//! Multiple clustering solutions **by different subspace projections**
//! (tutorial section 4, slides 63–92).
//!
//! Clusters are detected in axis-parallel projections of the original
//! attributes — each cluster is an `(O, S)` pair, and different subspaces
//! are different *views*, so one object legitimately appears in several
//! clusters. The crate covers the section's full arc:
//!
//! * the **grid/lattice substrate** with apriori monotonicity pruning
//!   ([`grid`], [`lattice`]; slides 69–71);
//! * **subspace clustering**: [`clique`] (Agrawal et al. 1998), [`schism`]
//!   with its Chernoff–Hoeffding adaptive threshold (Sequeira & Zaki 2004,
//!   slide 73), density-based [`subclu`] (Kailing et al. 2004b, slide 74);
//! * **projected clustering** as the disjoint-partition contrast:
//!   [`proclus`] (Aggarwal et al. 1999, slide 66) and Monte-Carlo
//!   flexible-box mining [`doc`] (Procopiuc et al. 2002, slide 72);
//! * **subspace search**: [`enclus`] entropy ranking (Cheng et al. 1999)
//!   and [`ris`] density ranking (Kailing et al. 2003) — both slide 88 —
//!   plus [`msc`]-style HSIC-penalised independent spectral views
//!   (Niu & Dy 2010, slide 90);
//! * **result selection for multiple views**: redundancy elimination
//!   ([`redundancy`]: RESCU- and STATPC-style, slides 77–79), orthogonal
//!   concepts [`osclu`] (Günnemann et al. 2009, slides 80–85, including an
//!   exact small-instance solver for the NP-hard selection), and
//!   alternative-to-given selection [`asclu`] (Günnemann et al. 2010,
//!   slides 86–87).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asclu;
pub mod clique;
pub mod doc;
pub mod enclus;
pub mod grid;
pub mod lattice;
pub mod msc;
pub mod osclu;
pub mod proclus;
pub mod redundancy;
pub mod ris;
pub mod schism;
pub mod subclu;

pub use clique::Clique;
pub use doc::Doc;
pub use msc::Msc;
pub use enclus::Enclus;
pub use osclu::Osclu;
pub use proclus::Proclus;
pub use ris::Ris;
pub use schism::Schism;
pub use subclu::Subclu;
