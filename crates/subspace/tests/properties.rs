//! Property-based tests for the subspace substrate and selection logic.

use std::collections::HashSet;

use multiclust_core::subspace::{covers_subspace, SubspaceCluster};
use multiclust_data::Dataset;
use multiclust_subspace::grid::SubspaceGrid;
use multiclust_subspace::lattice::{bottom_up_search, exhaustive_search};
use multiclust_subspace::osclu::Osclu;
use multiclust_subspace::schism::schism_threshold;
use proptest::prelude::*;

/// Strategy: a random downward-closed subspace family over `d` dims,
/// described by a set of maximal subspaces.
fn maximal_sets(d: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::btree_set(0..d, 1..=d), 1..4).prop_map(
        |sets| {
            sets.into_iter()
                .map(|s| s.into_iter().collect::<Vec<usize>>())
                .collect()
        },
    )
}

fn is_subset(a: &[usize], b: &[usize]) -> bool {
    let bs: HashSet<usize> = b.iter().copied().collect();
    a.iter().all(|x| bs.contains(x))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Apriori pruning is lossless: bottom-up with pruning finds exactly
    /// the same downward-closed family as exhaustive enumeration, with no
    /// more evaluations.
    #[test]
    fn lattice_pruning_is_lossless(maximal in maximal_sets(6)) {
        let d = 6;
        let pred = |s: &[usize]| maximal.iter().any(|m| is_subset(s, m));
        let pruned = bottom_up_search(d, pred, false);
        let naive = exhaustive_search(d, d, pred);
        let mut a = pruned.subspaces.clone();
        let mut b = naive.subspaces.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert!(pruned.stats.evaluated <= naive.stats.evaluated);
    }

    /// `coveredSubspaces_β` is monotone in β: loosening β can only add
    /// covered subspaces, never remove them.
    #[test]
    fn covers_is_monotone_in_beta(
        s in prop::collection::btree_set(0..10usize, 1..6),
        t in prop::collection::btree_set(0..10usize, 1..6),
        beta_lo in 0.05f64..0.5,
        beta_hi in 0.5f64..1.0,
    ) {
        let s: Vec<usize> = s.into_iter().collect();
        let t: Vec<usize> = t.into_iter().collect();
        if covers_subspace(&s, &t, beta_hi) {
            prop_assert!(covers_subspace(&s, &t, beta_lo));
        }
    }

    /// Every subspace covers itself at any β; disjoint subspaces never
    /// cover each other.
    #[test]
    fn covers_identity_and_disjointness(
        s in prop::collection::btree_set(0..10usize, 1..6),
        beta in 0.05f64..1.0,
    ) {
        let s: Vec<usize> = s.into_iter().collect();
        prop_assert!(covers_subspace(&s, &s, beta));
        let shifted: Vec<usize> = s.iter().map(|&x| x + 20).collect();
        prop_assert!(!covers_subspace(&s, &shifted, beta));
    }

    /// Grid invariants: cells partition the objects; entropy lies in
    /// `[0, ln(populated cells)]`.
    #[test]
    fn grid_partitions_and_entropy_bounds(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 3),
            2..40,
        ),
        xi in 1u32..8,
    ) {
        let data = Dataset::from_rows(&rows);
        let grid = SubspaceGrid::build(&data, &[0, 1, 2], xi);
        let total: usize = grid.cells.values().map(Vec::len).sum();
        prop_assert_eq!(total, data.len());
        let h = grid.entropy(data.len());
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (grid.populated_cells() as f64).ln() + 1e-9);
    }

    /// The SCHISM threshold decreases in the dimensionality and in the
    /// database size, and always stays positive.
    #[test]
    fn schism_threshold_monotonicities(
        xi in 2u32..20,
        n in 10usize..100_000,
        p in 1e-6f64..0.5,
        s in 1usize..15,
    ) {
        let t = schism_threshold(s, xi, n, p);
        prop_assert!(t > 0.0);
        prop_assert!(schism_threshold(s + 1, xi, n, p) <= t + 1e-15);
        prop_assert!(schism_threshold(s, xi, n * 2, p) <= t + 1e-15);
    }

    /// The greedy OSCLU selection is always a *valid* orthogonal
    /// clustering, and the exact solver (on small instances) never scores
    /// below it.
    #[test]
    fn osclu_greedy_valid_and_dominated_by_exact(
        object_sets in prop::collection::vec(
            prop::collection::btree_set(0..12usize, 1..8),
            1..7,
        ),
        alpha in 0.3f64..1.0,
    ) {
        let all: Vec<SubspaceCluster> = object_sets
            .into_iter()
            .map(|objs| SubspaceCluster::new(objs.into_iter().collect(), vec![0]))
            .collect();
        let osclu = Osclu::new(1.0, alpha);
        let greedy = osclu.select_greedy(&all);
        prop_assert!(osclu.is_valid(&all, &greedy.selected));
        let exact = osclu.select_exact(&all);
        prop_assert!(osclu.is_valid(&all, &exact.selected));
        prop_assert!(exact.total_interestingness >= greedy.total_interestingness - 1e-9);
    }
}
