//! COALA (Bae & Bailey 2006) — slides 31–33.
//!
//! Constrained Orthogonal Average Link Clustering: a hierarchical
//! average-link agglomeration steered away from a *given* clustering by
//! cannot-link constraints. Every pair co-clustered in the given solution
//! becomes `cannot(o, p)`; at each step the algorithm computes
//!
//! * the best **quality merge** — smallest average-link distance `d_qual`
//!   over all cluster pairs (constraints ignored), and
//! * the best **dissimilarity merge** — smallest average-link distance
//!   `d_diss` over pairs in `Dissimilar` (no cannot-link spans them),
//!
//! and performs the quality merge iff `d_qual < w · d_diss`. Large `w`
//! prefers quality, small `w` prefers dissimilarity (slide 33).

use multiclust_core::measures::quality::{average_link, average_link_cached};
use multiclust_linalg::kernels::{self, SymmetricMatrix};
use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::{Clustering, ConstraintSet};
use multiclust_data::Dataset;
use rand::rngs::StdRng;

use crate::AlternativeClusterer;

/// COALA configuration: target cluster count `k` and trade-off weight `w`.
#[derive(Clone, Copy, Debug)]
pub struct Coala {
    k: usize,
    w: f64,
}

/// COALA output with merge statistics.
#[derive(Clone, Debug)]
pub struct CoalaResult {
    /// The alternative clustering.
    pub clustering: Clustering,
    /// Number of quality merges taken.
    pub quality_merges: usize,
    /// Number of dissimilarity merges taken.
    pub dissimilarity_merges: usize,
}

impl Coala {
    /// COALA with `k` output clusters and trade-off `w`.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1` and `w > 0`.
    pub fn new(k: usize, w: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(w > 0.0, "w must be positive");
        Self { k, w }
    }

    /// Runs COALA against the cannot-links induced by `given`.
    ///
    /// # Panics
    /// Panics when the dataset has fewer objects than `k` or sizes
    /// mismatch.
    pub fn fit(&self, data: &Dataset, given: &Clustering) -> CoalaResult {
        assert_eq!(data.len(), given.len(), "data/clustering size mismatch");
        let constraints = ConstraintSet::cannot_links_from(given);
        self.fit_with_constraints(data, &constraints)
    }

    /// Runs COALA against an explicit constraint set (the paper's more
    /// general interface: constraints need not come from a clustering).
    pub fn fit_with_constraints(
        &self,
        data: &Dataset,
        constraints: &ConstraintSet,
    ) -> CoalaResult {
        let n = data.len();
        assert!(n >= self.k, "need at least k objects");
        let _span = multiclust_telemetry::span("coala.fit");
        // The engine computes the pairwise distance matrix once and reuses
        // it across every merge step (the naive path recomputes up to
        // n²/2 distances per step). Capped so the condensed triangle stays
        // within a few hundred MB; `average_link_cached` accumulates in the
        // same order over the same values, so results are bit-identical.
        let dists: Option<SymmetricMatrix> =
            if kernels::kernel_mode().uses_engine() && n <= 16_384 {
                Some(kernels::dist_matrix(data.dims(), data.as_slice()))
            } else {
                None
            };
        let link = |a: &[usize], b: &[usize]| match &dists {
            Some(m) => average_link_cached(m, a, b),
            None => average_link(data, a, b),
        };
        let mut groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut quality_merges = 0;
        let mut dissimilarity_merges = 0;

        while groups.len() > self.k {
            // The O(groups²) scan for the best quality merge (globally
            // closest pair) and the best dissimilarity merge (closest pair
            // without spanning cannot-links) splits across threads as an
            // ordered reduction over the lexicographic pair list: chunks
            // are mapped independently and folded in pair order with a
            // strict `<`, so the winner is the first minimum in scan order
            // — bit-identical to the serial double loop.
            let g = groups.len();
            // Pairs are enumerated straight from the linear index (the
            // lexicographic rank of (i, j) in the strict upper triangle)
            // instead of materializing the O(g²) pair list every step —
            // at 10k groups that list alone was 800 MB of churn per merge.
            let row_start = |i: usize| i * (2 * g - i - 1) / 2;
            let pair_at = |t: usize| {
                // Float inverse of the triangular rank, then exact fixup.
                let disc = ((2 * g - 1) * (2 * g - 1) - 8 * t) as f64;
                let mut i = (((2 * g - 1) as f64 - disc.sqrt()) / 2.0) as usize;
                i = i.min(g - 2);
                while row_start(i) > t {
                    i -= 1;
                }
                while row_start(i + 1) <= t {
                    i += 1;
                }
                (i, i + 1 + (t - row_start(i)))
            };
            let (qual, diss) = multiclust_parallel::par_reduce(
                g * (g - 1) / 2,
                8,
                |range| {
                    let mut qual: Option<(usize, usize, f64)> = None;
                    let mut diss: Option<(usize, usize, f64)> = None;
                    let (mut i, mut j) = pair_at(range.start);
                    for _ in range {
                        let d = link(&groups[i], &groups[j]);
                        if qual.is_none_or(|(_, _, best)| d < best) {
                            qual = Some((i, j, d));
                        }
                        if constraints.allows_merge(&groups[i], &groups[j])
                            && diss.is_none_or(|(_, _, best)| d < best)
                        {
                            diss = Some((i, j, d));
                        }
                        j += 1;
                        if j == g {
                            i += 1;
                            j = i + 1;
                        }
                    }
                    (qual, diss)
                },
                |a, b| (earlier_min(a.0, b.0), earlier_min(a.1, b.1)),
            )
            .expect("at least one pair exists");
            let (qi, qj, d_qual) = qual.expect("at least one pair exists");
            // Choose the merge per slide 32: quality iff d_qual < w·d_diss;
            // if no admissible dissimilarity merge exists, quality merges
            // are all that is left.
            let (i, j, took_quality) = match diss {
                Some((di, dj, d_diss)) if d_qual >= self.w * d_diss => {
                    dissimilarity_merges += 1;
                    (di, dj, false)
                }
                _ => {
                    quality_merges += 1;
                    (qi, qj, true)
                }
            };
            // Merge-decision trace: d_diss is −1 when no admissible
            // dissimilarity merge existed (every pair spans a cannot-link).
            if multiclust_telemetry::enabled() {
                let step = (n - groups.len()) as f64;
                let d_diss = diss.map_or(-1.0, |(_, _, d)| d);
                multiclust_telemetry::event(
                    "coala.merge",
                    &[
                        ("step", step),
                        ("d_qual", d_qual),
                        ("d_diss", d_diss),
                        ("w_d_diss", if d_diss < 0.0 { -1.0 } else { self.w * d_diss }),
                        ("quality", f64::from(took_quality)),
                    ],
                );
            }
            let merged = groups.swap_remove(j);
            groups[i].extend(merged);
        }
        multiclust_telemetry::counter_add("coala.quality_merges", quality_merges as u64);
        multiclust_telemetry::counter_add(
            "coala.dissimilarity_merges",
            dissimilarity_merges as u64,
        );

        CoalaResult {
            clustering: Clustering::from_members(n, &groups),
            quality_merges,
            dissimilarity_merges,
        }
    }

    /// Taxonomy card (slide 116 row "(Bae & Bailey, 2006)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "COALA",
            reference: "Bae & Bailey 2006",
            space: SearchSpace::Original,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::Two,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }
}

/// Keeps `a` unless `b` is strictly closer — the fold that preserves
/// "first minimum in scan order" when chunks are combined in order.
fn earlier_min(
    a: Option<(usize, usize, f64)>,
    b: Option<(usize, usize, f64)>,
) -> Option<(usize, usize, f64)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if y.2 < x.2 { y } else { x }),
        (x, y) => x.or(y),
    }
}

impl AlternativeClusterer for Coala {
    fn alternative(
        &self,
        data: &Dataset,
        given: &[&Clustering],
        _rng: &mut StdRng,
    ) -> Clustering {
        // Union of cannot-links from every given clustering.
        let mut constraints = ConstraintSet::new();
        for g in given {
            for members in g.members() {
                for (idx, &a) in members.iter().enumerate() {
                    for &b in &members[idx + 1..] {
                        constraints.add_cannot_link(a, b);
                    }
                }
            }
        }
        self.fit_with_constraints(data, &constraints).clustering
    }

    fn name(&self) -> &'static str {
        "COALA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    /// On the four-blob square (slide 26), given the horizontal split,
    /// COALA with dissimilarity-leaning `w` recovers the vertical split.
    #[test]
    fn recovers_orthogonal_split() {
        let mut rng = seeded_rng(81);
        let fb = four_blob_square(15, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let res = Coala::new(2, 0.8).fit(&fb.dataset, &given);
        let vertical = Clustering::from_labels(&fb.vertical);
        let ari_alt = adjusted_rand_index(&res.clustering, &vertical);
        let ari_given = adjusted_rand_index(&res.clustering, &given);
        assert!(ari_alt > 0.9, "alternative ≈ vertical split: {ari_alt}");
        assert!(ari_given < 0.1, "alternative ⊥ given split: {ari_given}");
        assert!(res.dissimilarity_merges > 0);
    }

    /// Large `w` makes COALA ignore constraints and reproduce plain
    /// average-link quality (slide 33's trade-off).
    #[test]
    fn w_trades_quality_for_dissimilarity() {
        let mut rng = seeded_rng(82);
        let fb = four_blob_square(12, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);

        let quality_leaning = Coala::new(2, 1e6).fit(&fb.dataset, &given);
        let diss_leaning = Coala::new(2, 1e-6).fit(&fb.dataset, &given);
        let ari_quality = adjusted_rand_index(&quality_leaning.clustering, &given);
        let ari_diss = adjusted_rand_index(&diss_leaning.clustering, &given);
        // The quality-leaning run may rediscover the given split; the
        // dissimilarity-leaning run must not.
        assert!(ari_diss < 0.1, "small w avoids the given clustering: {ari_diss}");
        assert!(
            quality_leaning.dissimilarity_merges <= diss_leaning.dissimilarity_merges,
            "larger w ⇒ no more dissimilarity merges"
        );
        let _ = ari_quality; // documented, not asserted: ties possible
    }

    #[test]
    fn unconstrained_reduces_to_average_link() {
        let mut rng = seeded_rng(83);
        let fb = four_blob_square(10, 10.0, 0.5, &mut rng);
        let empty = ConstraintSet::new();
        let coala = Coala::new(4, 1.0).fit_with_constraints(&fb.dataset, &empty);
        let (agg, _) = multiclust_base::Agglomerative::new(
            4,
            multiclust_base::Linkage::Average,
        )
        .fit(&fb.dataset);
        assert_eq!(
            adjusted_rand_index(&coala.clustering, &agg),
            1.0,
            "with no constraints both merges coincide"
        );
    }

    #[test]
    fn produces_exactly_k_clusters() {
        let mut rng = seeded_rng(84);
        let fb = four_blob_square(8, 10.0, 0.5, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        for k in [2, 3, 5] {
            let res = Coala::new(k, 1.0).fit(&fb.dataset, &given);
            assert_eq!(res.clustering.num_clusters(), k);
            assert_eq!(res.quality_merges + res.dissimilarity_merges, 32 - k);
        }
    }
}
