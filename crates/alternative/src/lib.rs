//! Multiple clustering solutions **in the original data space**
//! (tutorial section 2, slides 25–46).
//!
//! The methods here search for alternative groupings without transforming
//! or projecting the data; they differ along the taxonomy's secondary axes:
//!
//! | module | method | processing | knowledge |
//! |---|---|---|---|
//! | [`meta`] | meta clustering (Caruana et al. 2006) | independent | none |
//! | [`coala`] | COALA (Bae & Bailey 2006) | iterative | given clustering |
//! | [`cond_ib`] | conditional information bottleneck (Gondek & Hofmann 2003/04) | iterative | given clustering |
//! | [`dec_kmeans`] | Dec-kMeans (Jain et al. 2008) | simultaneous | none |
//! | [`cami`] | CAMI (Dang & Bailey 2010a) | simultaneous | none |
//! | [`hossain`] | contingency-table disparate/dependent clustering (Hossain et al. 2010) | simultaneous | none |
//! | [`min_centropy`] | minCEntropy-style (Vinh & Epps 2010) | iterative | given clustering(s) |
//! | [`chain`] | naive vs. cumulative chaining of any alternative clusterer (the drawback discussion of slides 37–38) | iterative | — |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cami;
pub mod chain;
pub mod coala;
pub mod cond_ib;
pub mod dec_kmeans;
pub mod hossain;
pub mod meta;
pub mod min_centropy;

pub use cami::Cami;
pub use coala::Coala;
pub use cond_ib::ConditionalIb;
pub use dec_kmeans::DecKMeans;
pub use hossain::Hossain;
pub use meta::MetaClustering;
pub use min_centropy::MinCEntropy;

use multiclust_core::Clustering;
use multiclust_data::Dataset;
use rand::rngs::StdRng;

/// An algorithm that produces a clustering *alternative to* one or more
/// given clusterings — the common shape of the knowledge-driven methods
/// (slide 30: "given clustering Clust₁ and functions Q, Diss, find Clust₂
/// such that Q(Clust₂) and Diss(Clust₁, Clust₂) are high").
///
/// Object-safe so chaining strategies ([`chain`]) can wrap any of them.
pub trait AlternativeClusterer {
    /// Produces a clustering dissimilar to every clustering in `given`.
    fn alternative(
        &self,
        data: &Dataset,
        given: &[&Clustering],
        rng: &mut StdRng,
    ) -> Clustering;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}
