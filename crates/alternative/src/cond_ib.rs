//! Hard conditional information bottleneck (Gondek & Hofmann 2003/2004) —
//! slides 35–36.
//!
//! The information bottleneck clusters objects `X` by compressing them into
//! `C` while preserving information about their features `Y`:
//! minimise `F(C) = I(X;C) − β·I(Y;C)`. Gondek & Hofmann's *conditional* IB
//! injects a given clustering `D` by preserving only information about `Y`
//! **beyond** what `D` already explains:
//!
//! ```text
//! minimise  F₂(C) = I(X;C) − β · I(Y;C | D)
//! ```
//!
//! This module implements the hard (sequential) variant: for a hard
//! clustering with uniform `p(x)`, `I(X;C) = H(C)`, and the optimiser
//! repeatedly removes one object and reinserts it into the cluster that
//! minimises `F₂`, until no move improves — the standard sequential-IB
//! scheme. Features enter through the empirical conditionals
//! `p(y|x) ∝ feature value`, so the data must be non-negative; callers can
//! min-max normalise first (the joint distribution requirement noted on
//! slide 36).

use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::AlternativeClusterer;

/// Hard conditional information bottleneck configuration.
#[derive(Clone, Debug)]
pub struct ConditionalIb {
    k: usize,
    beta: f64,
    max_sweeps: usize,
}

impl ConditionalIb {
    /// `k` output clusters with preservation weight `β` (larger β leans on
    /// preserving feature information; the tutorial's trade-off between
    /// compression and preservation, slide 35).
    pub fn new(k: usize, beta: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(beta > 0.0, "β must be positive");
        Self { k, beta, max_sweeps: 30 }
    }

    /// Sets the maximum sequential sweeps.
    #[must_use]
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Runs the sequential optimisation. `given = None` degenerates to the
    /// plain information bottleneck (a trivial one-cluster `D` conditions
    /// on nothing).
    ///
    /// # Panics
    /// Panics if the data contains negative values, sizes mismatch, or
    /// `n < k`.
    pub fn fit(
        &self,
        data: &Dataset,
        given: Option<&Clustering>,
        rng: &mut StdRng,
    ) -> Clustering {
        let n = data.len();
        assert!(n >= self.k, "need at least k objects");
        assert!(
            data.as_slice().iter().all(|&x| x >= 0.0),
            "IB requires non-negative features (p(y|x) ∝ value); min-max normalise first"
        );
        let trivial = Clustering::from_labels(&vec![0usize; n]);
        let d_clust = given.unwrap_or(&trivial);
        assert_eq!(d_clust.len(), n, "given clustering size mismatch");

        // Empirical conditionals p(y|x): rows normalised to sum 1 (objects
        // with all-zero rows get a uniform conditional).
        let dims = data.dims();
        let py_given_x: Vec<Vec<f64>> = data
            .rows()
            .map(|row| {
                let s: f64 = row.iter().sum();
                if s > 0.0 {
                    row.iter().map(|&x| x / s).collect()
                } else {
                    vec![1.0 / dims as f64; dims]
                }
            })
            .collect();

        // Random initial partition with all k labels present.
        let mut labels: Vec<usize> = (0..n).map(|i| i % self.k).collect();
        labels.shuffle(rng);

        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.max_sweeps {
            order.shuffle(rng);
            let mut moved = false;
            for &i in &order {
                let current = labels[i];
                // Never empty a cluster completely.
                let count_current = labels.iter().filter(|&&l| l == current).count();
                if count_current <= 1 {
                    continue;
                }
                let mut best = (current, f64::INFINITY);
                for c in 0..self.k {
                    labels[i] = c;
                    let f = self.objective(&labels, &py_given_x, d_clust);
                    if f < best.1 - 1e-12 {
                        best = (c, f);
                    }
                }
                labels[i] = best.0;
                if best.0 != current {
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        let _ = rng.gen::<u32>(); // advance stream so successive calls differ
        Clustering::from_labels(&labels)
    }

    /// Best-of-`restarts` variant: the sequential optimiser is greedy and
    /// sensitive to its random initial partition, so production use runs
    /// several restarts and keeps the solution with the smallest `F₂`.
    pub fn fit_with_restarts(
        &self,
        data: &Dataset,
        given: Option<&Clustering>,
        restarts: usize,
        rng: &mut StdRng,
    ) -> Clustering {
        assert!(restarts >= 1, "at least one restart required");
        let mut best: Option<(f64, Clustering)> = None;
        for _ in 0..restarts {
            let c = self.fit(data, given, rng);
            let f = self.evaluate_objective(data, &c, given);
            if best.as_ref().is_none_or(|(bf, _)| f < *bf) {
                best = Some((f, c));
            }
        }
        best.expect("restarts >= 1").1
    }

    /// Evaluates `F₂(C) = H(C) − β·I(Y;C|D)` for an arbitrary hard
    /// clustering (smaller is better under this model).
    pub fn evaluate_objective(
        &self,
        data: &Dataset,
        clustering: &Clustering,
        given: Option<&Clustering>,
    ) -> f64 {
        let n = data.len();
        assert_eq!(clustering.len(), n, "clustering size mismatch");
        let dims = data.dims();
        let py_given_x: Vec<Vec<f64>> = data
            .rows()
            .map(|row| {
                let s: f64 = row.iter().sum();
                if s > 0.0 {
                    row.iter().map(|&x| x / s).collect()
                } else {
                    vec![1.0 / dims as f64; dims]
                }
            })
            .collect();
        let trivial = Clustering::from_labels(&vec![0usize; n]);
        let d_clust = given.unwrap_or(&trivial);
        let labels: Vec<usize> = (0..n)
            .map(|i| clustering.assignment(i).unwrap_or(0))
            .collect();
        self.objective(&labels, &py_given_x, d_clust)
    }

    /// `F₂(C) = H(C) − β·I(Y;C|D)` for the hard partition `labels`.
    fn objective(
        &self,
        labels: &[usize],
        py_given_x: &[Vec<f64>],
        d_clust: &Clustering,
    ) -> f64 {
        let n = labels.len() as f64;
        // H(C)
        let mut counts = vec![0usize; self.k];
        for &l in labels {
            counts[l] += 1;
        }
        let h_c: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum();

        // I(Y;C|D) = Σ_d p(d)·I(Y;C | D=d), with each conditional MI
        // computed from the within-stratum joint p(y,c | d).
        let kd = d_clust.num_clusters().max(1);
        let dims = py_given_x[0].len();
        let mut i_cond = 0.0;
        for d in 0..kd {
            let stratum: Vec<usize> = (0..labels.len())
                .filter(|&i| d_clust.assignment(i) == Some(d))
                .collect();
            if stratum.is_empty() {
                continue;
            }
            let pd = stratum.len() as f64 / n;
            // joint[c][y] over the stratum (p(x) uniform within stratum).
            let mut joint = vec![vec![0.0; dims]; self.k];
            for &i in &stratum {
                for (y, &p) in py_given_x[i].iter().enumerate() {
                    joint[labels[i]][y] += p / stratum.len() as f64;
                }
            }
            let pc: Vec<f64> = joint.iter().map(|row| row.iter().sum()).collect();
            let mut py = vec![0.0; dims];
            for row in &joint {
                for (t, &v) in py.iter_mut().zip(row) {
                    *t += v;
                }
            }
            let mut mi = 0.0;
            for (c, row) in joint.iter().enumerate() {
                for (y, &p) in row.iter().enumerate() {
                    if p > 1e-300 && pc[c] > 0.0 && py[y] > 0.0 {
                        mi += p * (p / (pc[c] * py[y])).ln();
                    }
                }
            }
            i_cond += pd * mi;
        }
        h_c - self.beta * i_cond
    }

    /// Taxonomy card (slide 116 row "(Gondek & Hofmann, 2004)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "CondIB",
            reference: "Gondek & Hofmann 2004",
            space: SearchSpace::Original,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::Two,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }
}

impl AlternativeClusterer for ConditionalIb {
    fn alternative(
        &self,
        data: &Dataset,
        given: &[&Clustering],
        rng: &mut StdRng,
    ) -> Clustering {
        // Multiple givens: condition on their product partition.
        match given {
            [] => self.fit(data, None, rng),
            [single] => self.fit(data, Some(single), rng),
            many => {
                let n = data.len();
                let mut combined = vec![0usize; n];
                let mut stride = 1usize;
                for g in many {
                    for (ci, c) in combined.iter_mut().enumerate() {
                        *c += stride * g.assignment(ci).unwrap_or(g.num_clusters());
                    }
                    stride *= g.num_clusters() + 1;
                }
                let product = Clustering::from_labels(&combined).canonicalized();
                self.fit(data, Some(&product), rng)
            }
        }
    }

    fn name(&self) -> &'static str {
        "CondIB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    fn normalized_blobs(seed: u64) -> (Dataset, Clustering, Clustering, Clustering) {
        let mut rng = seeded_rng(seed);
        let fb = four_blob_square(25, 10.0, 0.6, &mut rng);
        (
            fb.dataset.min_max_normalized(),
            Clustering::from_labels(&fb.horizontal),
            Clustering::from_labels(&fb.vertical),
            Clustering::from_labels(&fb.blob),
        )
    }

    #[test]
    fn plain_ib_finds_feature_structure() {
        let (data, _h, _v, blob) = normalized_blobs(121);
        let mut rng = seeded_rng(122);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..5 {
            let c = ConditionalIb::new(4, 50.0).fit(&data, None, &mut rng);
            best = best.max(adjusted_rand_index(&c, &blob));
        }
        // The conditionals p(y|x) in [0,1]² coordinates carry the blob
        // structure; plain IB should recover most of it.
        assert!(best > 0.5, "plain IB finds structure: {best}");
    }

    #[test]
    fn conditioning_pushes_away_from_given() {
        let (data, horizontal, _v, _blob) = normalized_blobs(123);
        let mut rng = seeded_rng(124);
        let mut plain_agree = 0.0;
        let mut cond_agree = 0.0;
        for _ in 0..5 {
            let plain = ConditionalIb::new(2, 50.0).fit(&data, None, &mut rng);
            let cond = ConditionalIb::new(2, 50.0).fit(&data, Some(&horizontal), &mut rng);
            plain_agree += adjusted_rand_index(&plain, &horizontal).max(0.0);
            cond_agree += adjusted_rand_index(&cond, &horizontal).max(0.0);
        }
        assert!(
            cond_agree <= plain_agree + 1e-9,
            "conditional IB agrees less with the given clustering: {cond_agree} vs {plain_agree}"
        );
    }

    #[test]
    fn rejects_negative_features() {
        let data = Dataset::from_rows(&[vec![-1.0, 2.0], vec![1.0, 0.0]]);
        let mut rng = seeded_rng(125);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ConditionalIb::new(2, 1.0).fit(&data, None, &mut rng)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn every_cluster_stays_populated() {
        let (data, _h, _v, _b) = normalized_blobs(126);
        let mut rng = seeded_rng(127);
        let c = ConditionalIb::new(3, 20.0).fit(&data, None, &mut rng);
        assert!(c.sizes().iter().all(|&s| s > 0), "sizes {:?}", c.sizes());
    }
}
