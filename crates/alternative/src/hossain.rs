//! Disparate (and dependent) clustering via contingency tables
//! (Hossain, Tadepalli, Watson, Davidson, Helm & Ramakrishnan 2010) —
//! slide 44.
//!
//! Two prototype-based clusterings are optimised *simultaneously* so that
//! their contingency table approaches a target shape:
//!
//! * **Disparate** — the uniform table: knowing an object's cluster in one
//!   solution says nothing about the other (maximum dissimilarity);
//! * **Dependent** — a concentrated (diagonal-like) table: the solutions
//!   reinforce each other (the framework's other direction, noted on the
//!   slide).
//!
//! Arbitrary label assignments could trivially reach either target, so —
//! exactly as the slide argues — clusters are represented by *prototypes*
//! and objects always pay their squared distance; the table shaping enters
//! as a penalty in a sequential reassignment sweep with incrementally
//! maintained joint counts (batch counts would admit degenerate relabeling
//! fixed points).

use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::{Clustering, ContingencyTable};
use multiclust_data::Dataset;
use multiclust_linalg::vector::sq_dist;
use rand::rngs::StdRng;

use multiclust_base::kmeans::plus_plus_init;

/// Target relationship between the two clusterings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coupling {
    /// Maximise contingency uniformity — disparate clusterings.
    Disparate,
    /// Maximise contingency concentration — dependent clusterings.
    Dependent,
}

/// Configuration of the contingency-coupled double k-means.
#[derive(Clone, Debug)]
pub struct Hossain {
    k1: usize,
    k2: usize,
    coupling: Coupling,
    /// Penalty weight (dimensionless; scaled by data variance internally).
    mu: f64,
    max_iter: usize,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct HossainResult {
    /// The two coupled clusterings.
    pub clusterings: [Clustering; 2],
    /// Final contingency table between them.
    pub contingency: ContingencyTable,
    /// Final uniformity deviation (0 = perfectly uniform ⇒ fully
    /// disparate; large ⇒ concentrated ⇒ dependent).
    pub uniformity_deviation: f64,
    /// Sweeps performed.
    pub iterations: usize,
}

impl Hossain {
    /// Two clusterings with `k1`/`k2` prototypes and the given coupling.
    pub fn new(k1: usize, k2: usize, coupling: Coupling) -> Self {
        assert!(k1 >= 1 && k2 >= 1, "cluster counts must be positive");
        Self { k1, k2, coupling, mu: 2.0, max_iter: 60 }
    }

    /// Sets the coupling weight `μ`.
    #[must_use]
    pub fn with_mu(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0, "μ must be non-negative");
        self.mu = mu;
        self
    }

    /// Sets the sweep cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Runs the alternating optimisation.
    ///
    /// # Panics
    /// Panics when `n < max(k1, k2)`.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> HossainResult {
        let n = data.len();
        assert!(n >= self.k1.max(self.k2), "need at least max(k) objects");
        let d = data.dims();
        let ks = [self.k1, self.k2];

        // Penalty scale relative to data variance (dimensionless μ).
        let mean = data.mean();
        let variance: f64 =
            data.rows().map(|row| sq_dist(row, &mean)).sum::<f64>() / n as f64;
        let scale = self.mu * variance.max(1e-12);
        // Sign: disparate penalises popular joint cells, dependent rewards
        // them.
        let sign = match self.coupling {
            Coupling::Disparate => 1.0,
            Coupling::Dependent => -1.0,
        };

        let mut prototypes = [
            plus_plus_init(data, self.k1, rng),
            plus_plus_init(data, self.k2, rng),
        ];
        // Initial pure-distance assignments.
        let mut labels: [Vec<usize>; 2] = [vec![0; n], vec![0; n]];
        for t in 0..2 {
            for (i, row) in data.rows().enumerate() {
                labels[t][i] = nearest_index(row, &prototypes[t]);
            }
        }
        // Joint counts, maintained incrementally: joint[c1][c2].
        let mut joint = vec![vec![0.0f64; self.k2]; self.k1];
        for i in 0..n {
            joint[labels[0][i]][labels[1][i]] += 1.0;
        }

        let mut iterations = 0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            let mut changed = false;
            for t in 0..2 {
                let other = 1 - t;
                for (i, row) in data.rows().enumerate() {
                    // Take i out of the joint counts.
                    joint[labels[0][i]][labels[1][i]] -= 1.0;
                    let other_label = labels[other][i];
                    let mut best = (labels[t][i], f64::INFINITY);
                    for (c, proto) in prototypes[t].iter().enumerate() {
                        let cell = match t {
                            0 => joint[c][other_label],
                            _ => joint[other_label][c],
                        };
                        // p̂(c | other's label), Laplace-smoothed.
                        let row_total: f64 = match t {
                            0 => (0..self.k1).map(|a| joint[a][other_label]).sum(),
                            _ => joint[other_label].iter().sum(),
                        };
                        let p = (cell + 1.0) / (row_total + ks[t] as f64);
                        let penalty =
                            sign * scale * (p.ln() - (1.0 / ks[t] as f64).ln());
                        let cost = sq_dist(row, proto) + penalty;
                        if cost < best.1 {
                            best = (c, cost);
                        }
                    }
                    if best.0 != labels[t][i] {
                        labels[t][i] = best.0;
                        changed = true;
                    }
                    joint[labels[0][i]][labels[1][i]] += 1.0;
                }
                // Prototype update = cluster means (the quality anchor).
                let mut sums = vec![vec![0.0; d]; ks[t]];
                let mut counts = vec![0usize; ks[t]];
                for (i, row) in data.rows().enumerate() {
                    counts[labels[t][i]] += 1;
                    for (s, &x) in sums[labels[t][i]].iter_mut().zip(row) {
                        *s += x;
                    }
                }
                for c in 0..ks[t] {
                    if counts[c] > 0 {
                        for s in &mut sums[c] {
                            *s /= counts[c] as f64;
                        }
                        prototypes[t][c] = std::mem::take(&mut sums[c]);
                    }
                }
            }
            if !changed && it > 0 {
                break;
            }
        }

        let clusterings = [
            Clustering::from_labels(&labels[0]),
            Clustering::from_labels(&labels[1]),
        ];
        let contingency = ContingencyTable::new(&clusterings[0], &clusterings[1]);
        let uniformity_deviation = contingency.uniformity_deviation();
        HossainResult { clusterings, contingency, uniformity_deviation, iterations }
    }

    /// Taxonomy card (slide 116 row "(Hossain et al., 2010)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "Hossain",
            reference: "Hossain et al. 2010",
            space: SearchSpace::Original,
            processing: Processing::Simultaneous,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::Two,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }
}

fn nearest_index(row: &[f64], protos: &[Vec<f64>]) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (c, p) in protos.iter().enumerate() {
        let d = sq_dist(row, p);
        if d < best.1 {
            best = (c, d);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    #[test]
    fn disparate_mode_finds_both_square_splits() {
        let mut rng = seeded_rng(261);
        let fb = four_blob_square(30, 10.0, 0.7, &mut rng);
        let horizontal = Clustering::from_labels(&fb.horizontal);
        let vertical = Clustering::from_labels(&fb.vertical);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..6 {
            let res = Hossain::new(2, 2, Coupling::Disparate).fit(&fb.dataset, &mut rng);
            let fwd = adjusted_rand_index(&res.clusterings[0], &horizontal)
                .min(adjusted_rand_index(&res.clusterings[1], &vertical));
            let rev = adjusted_rand_index(&res.clusterings[1], &horizontal)
                .min(adjusted_rand_index(&res.clusterings[0], &vertical));
            best = best.max(fwd.max(rev));
        }
        assert!(best > 0.9, "disparate clusterings match the two splits: {best}");
    }

    #[test]
    fn disparate_tables_are_more_uniform_than_uncoupled() {
        let mut rng = seeded_rng(262);
        let fb = four_blob_square(25, 10.0, 0.7, &mut rng);
        let mut dev_free = 0.0;
        let mut dev_disp = 0.0;
        for _ in 0..5 {
            dev_free += Hossain::new(2, 2, Coupling::Disparate)
                .with_mu(0.0)
                .fit(&fb.dataset, &mut rng)
                .uniformity_deviation;
            dev_disp += Hossain::new(2, 2, Coupling::Disparate)
                .fit(&fb.dataset, &mut rng)
                .uniformity_deviation;
        }
        assert!(
            dev_disp < dev_free,
            "coupling flattens the contingency table: {dev_disp} vs {dev_free}"
        );
    }

    #[test]
    fn dependent_mode_aligns_the_two_clusterings() {
        let mut rng = seeded_rng(263);
        let fb = four_blob_square(25, 10.0, 0.7, &mut rng);
        let mut best_alignment = f64::NEG_INFINITY;
        for _ in 0..5 {
            let res = Hossain::new(2, 2, Coupling::Dependent).fit(&fb.dataset, &mut rng);
            best_alignment = best_alignment.max(adjusted_rand_index(
                &res.clusterings[0],
                &res.clusterings[1],
            ));
        }
        assert!(
            best_alignment > 0.9,
            "dependent coupling reproduces the same partition twice: {best_alignment}"
        );
    }

    #[test]
    fn supports_asymmetric_cluster_counts() {
        let mut rng = seeded_rng(264);
        let fb = four_blob_square(15, 10.0, 0.7, &mut rng);
        let res = Hossain::new(2, 4, Coupling::Disparate).fit(&fb.dataset, &mut rng);
        assert_eq!(res.clusterings[0].num_clusters(), 2);
        assert_eq!(res.clusterings[1].num_clusters(), 4);
        assert_eq!(res.contingency.shape(), (2, 4));
        assert!(res.iterations > 0);
    }
}
