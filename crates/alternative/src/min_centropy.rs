//! Conditional-entropy regularised alternative k-means, after minCEntropy
//! (Vinh & Epps 2010) — slide 34's "based on conditional entropy, able to
//! use a set of clusterings as input".
//!
//! The alternative clustering `C` should keep the conditional entropy
//! `H(C | Given_g)` *high* for every given clustering — knowing the old
//! labels should say nothing about the new ones — while staying compact.
//! We optimise a Lloyd-style alternation whose assignment step charges,
//! on top of the squared centroid distance, a penalty proportional to
//! `log p̂(c | g_g(i))`: placing object `i` in a cluster that is already
//! *popular among objects sharing its old label* recreates the given
//! structure and is discouraged. (minCEntropy proper optimises the same
//! objective with kernel density estimates; the parametric centroid form
//! here keeps the substrate exchangeable with the rest of the workspace —
//! see DESIGN.md.)

use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::vector::sq_dist;
use rand::rngs::StdRng;

use multiclust_base::kmeans::plus_plus_init;

use crate::AlternativeClusterer;

/// Configuration of the conditional-entropy alternative k-means.
#[derive(Clone, Debug)]
pub struct MinCEntropy {
    k: usize,
    /// Penalty weight trading compactness against novelty.
    weight: f64,
    max_iter: usize,
    /// Laplace smoothing for the `p̂(c|g)` estimates.
    smoothing: f64,
}

impl MinCEntropy {
    /// `k` output clusters, penalty `weight`, 100 iterations.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1` and `weight ≥ 0`.
    pub fn new(k: usize, weight: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(weight >= 0.0, "weight must be non-negative");
        Self { k, weight, max_iter: 100, smoothing: 1.0 }
    }

    /// Sets the maximum Lloyd iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Runs the penalised alternation against the given clusterings.
    ///
    /// # Panics
    /// Panics on size mismatches or `n < k`.
    pub fn fit(
        &self,
        data: &Dataset,
        given: &[&Clustering],
        rng: &mut StdRng,
    ) -> Clustering {
        let n = data.len();
        assert!(n >= self.k, "need at least k objects");
        for g in given {
            assert_eq!(g.len(), n, "given clustering size mismatch");
        }
        let d = data.dims();

        // Scale the penalty relative to the data's variance so `weight` is
        // dimensionless.
        let mean = data.mean();
        let variance: f64 = data
            .rows()
            .map(|row| sq_dist(row, &mean))
            .sum::<f64>()
            / n as f64;
        let penalty_scale = self.weight * variance.max(1e-12);

        let mut centroids = plus_plus_init(data, self.k, rng);
        // Initial pure-distance assignment to seed the joint counts.
        let mut labels: Vec<usize> = data
            .rows()
            .map(|row| {
                centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        sq_dist(row, a.1).partial_cmp(&sq_dist(row, b.1)).unwrap()
                    })
                    .map(|(c, _)| c)
                    .expect("k >= 1")
            })
            .collect();
        // joint[g][old][c] — maintained *incrementally* during the
        // sequential assignment sweep. Batch updates would admit the
        // degenerate "label swap" fixed point (moving every object to the
        // anti-correlated cluster reproduces the given partition under a
        // relabelling); sequential updates make the counts react as objects
        // move, which drives each old-label group towards a *balanced*
        // spread over new clusters — genuinely high `H(C|G)`.
        let mut joint: Vec<Vec<Vec<f64>>> = given
            .iter()
            .map(|g| {
                let mut counts = vec![vec![0.0; self.k]; g.num_clusters()];
                for (i, &c) in labels.iter().enumerate() {
                    if let Some(old) = g.assignment(i) {
                        counts[old][c] += 1.0;
                    }
                }
                counts
            })
            .collect();

        for it in 0..self.max_iter {
            let mut changed = false;
            for (i, row) in data.rows().enumerate() {
                // Take object i out of the counts while scoring it.
                for (g, counts_g) in given.iter().zip(joint.iter_mut()) {
                    if let Some(old) = g.assignment(i) {
                        counts_g[old][labels[i]] -= 1.0;
                    }
                }
                let mut best = (0usize, f64::INFINITY);
                for (c, centroid) in centroids.iter().enumerate() {
                    let mut cost = sq_dist(row, centroid);
                    for (g, counts_g) in given.iter().zip(&joint) {
                        if let Some(old) = g.assignment(i) {
                            let row_counts = &counts_g[old];
                            let total: f64 = row_counts.iter().sum::<f64>()
                                + self.k as f64 * self.smoothing;
                            let p = (row_counts[c] + self.smoothing) / total;
                            // log p ∈ (−∞, 0]: popular (c | old) pairs cost
                            // more (−H(C|G) contribution), centred at the
                            // uniform baseline so the penalty vanishes when
                            // C ⊥ Given.
                            cost += penalty_scale
                                * (p.ln() - (1.0 / self.k as f64).ln());
                        }
                    }
                    if cost < best.1 {
                        best = (c, cost);
                    }
                }
                if labels[i] != best.0 {
                    labels[i] = best.0;
                    changed = true;
                }
                for (g, counts_g) in given.iter().zip(joint.iter_mut()) {
                    if let Some(old) = g.assignment(i) {
                        counts_g[old][labels[i]] += 1.0;
                    }
                }
            }
            // Centroid update.
            let mut sums = vec![vec![0.0; d]; self.k];
            let mut counts = vec![0usize; self.k];
            for (i, row) in data.rows().enumerate() {
                counts[labels[i]] += 1;
                for (s, &x) in sums[labels[i]].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    for s in &mut sums[c] {
                        *s /= counts[c] as f64;
                    }
                    centroids[c] = std::mem::take(&mut sums[c]);
                }
            }
            if !changed && it > 0 {
                break;
            }
        }
        Clustering::from_labels(&labels)
    }

    /// Taxonomy card (slide 116-adjacent row "(Vinh & Epps, 2010)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "MinCEntropy",
            reference: "Vinh & Epps 2010",
            space: SearchSpace::Original,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::AtLeastTwo,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }
}

impl AlternativeClusterer for MinCEntropy {
    fn alternative(
        &self,
        data: &Dataset,
        given: &[&Clustering],
        rng: &mut StdRng,
    ) -> Clustering {
        self.fit(data, given, rng)
    }

    fn name(&self) -> &'static str {
        "MinCEntropy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::{adjusted_rand_index, conditional_entropy};
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    #[test]
    fn finds_the_orthogonal_split() {
        let mut rng = seeded_rng(101);
        let fb = four_blob_square(30, 10.0, 0.7, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let vertical = Clustering::from_labels(&fb.vertical);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..5 {
            let alt = MinCEntropy::new(2, 2.0).fit(&fb.dataset, &[&given], &mut rng);
            best = best.max(adjusted_rand_index(&alt, &vertical));
        }
        assert!(best > 0.9, "vertical split recovered: {best}");
    }

    #[test]
    fn zero_weight_reduces_to_kmeans_quality() {
        let mut rng = seeded_rng(102);
        let fb = four_blob_square(20, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let blob = Clustering::from_labels(&fb.blob);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..5 {
            let alt = MinCEntropy::new(4, 0.0).fit(&fb.dataset, &[&given], &mut rng);
            best = best.max(adjusted_rand_index(&alt, &blob));
        }
        // With k=4 and no penalty the blobs themselves are found.
        assert!(best > 0.9, "plain k-means quality retained: {best}");
    }

    #[test]
    fn penalty_raises_conditional_entropy() {
        let mut rng = seeded_rng(103);
        let fb = four_blob_square(25, 10.0, 0.7, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let mut h_free = 0.0;
        let mut h_pen = 0.0;
        for _ in 0..5 {
            let free = MinCEntropy::new(2, 0.0).fit(&fb.dataset, &[&given], &mut rng);
            let pen = MinCEntropy::new(2, 3.0).fit(&fb.dataset, &[&given], &mut rng);
            h_free += conditional_entropy(&free, &given);
            h_pen += conditional_entropy(&pen, &given);
        }
        assert!(
            h_pen >= h_free,
            "penalised solutions carry more novel information: {h_pen} vs {h_free}"
        );
    }

    #[test]
    fn accepts_multiple_given_clusterings() {
        let mut rng = seeded_rng(104);
        let fb = four_blob_square(15, 10.0, 0.7, &mut rng);
        let g1 = Clustering::from_labels(&fb.horizontal);
        let g2 = Clustering::from_labels(&fb.vertical);
        let alt = MinCEntropy::new(2, 2.0).fit(&fb.dataset, &[&g1, &g2], &mut rng);
        assert_eq!(alt.len(), 60);
        // Both planted views are "used up": the result should match
        // neither strongly.
        assert!(adjusted_rand_index(&alt, &g1) < 0.7);
        assert!(adjusted_rand_index(&alt, &g2) < 0.7);
    }
}
