//! Meta clustering (Caruana et al. 2006) — slide 29.
//!
//! The "intuitive and powerful principle": generate *many* clustering
//! solutions blindly (different seeds, different `k`, different
//! algorithms), then group the solutions themselves by a clustering
//! dissimilarity (here `1 − Rand index`) and present one representative per
//! group. The tutorial's criticism — blind generation risks many highly
//! similar solutions — is exactly what experiment E2 measures (number of
//! distinct groups vs. number of runs).

use multiclust_core::measures::diss::rand_index;
use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::kernels::SymmetricMatrix;
use rand::rngs::StdRng;
use rand::Rng;

use multiclust_base::{Clusterer, KMeans};

/// Meta clustering configuration.
#[derive(Clone, Debug)]
pub struct MetaClustering {
    runs: usize,
    ks: Vec<usize>,
    /// Two solutions belong to the same group when their Rand index is at
    /// least this threshold.
    similarity_threshold: f64,
}

/// The output of meta clustering.
#[derive(Clone, Debug)]
pub struct MetaClusteringResult {
    /// Every generated base solution.
    pub all: Vec<Clustering>,
    /// Groups of solution indices (single-link closure at the threshold).
    pub groups: Vec<Vec<usize>>,
    /// One representative per group: the medoid solution (maximum total
    /// Rand agreement within its group).
    pub representatives: Vec<Clustering>,
}

impl MetaClustering {
    /// `runs` base-clusterer executions, each drawing `k` uniformly from
    /// `ks`; solutions grouped at `similarity_threshold` Rand agreement.
    ///
    /// # Panics
    /// Panics if `runs == 0`, `ks` is empty, or the threshold leaves
    /// `[0, 1]`.
    pub fn new(runs: usize, ks: Vec<usize>, similarity_threshold: f64) -> Self {
        assert!(runs >= 1, "at least one run required");
        assert!(!ks.is_empty(), "at least one candidate k required");
        assert!(
            (0.0..=1.0).contains(&similarity_threshold),
            "threshold must lie in [0, 1]"
        );
        Self { runs, ks, similarity_threshold }
    }

    /// Runs meta clustering with single-restart k-means as the base
    /// algorithm (non-determinism across runs comes from seeding — the
    /// "local minima" source of diversity named on slide 29).
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> MetaClusteringResult {
        let mut all = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            let k = self.ks[rng.gen_range(0..self.ks.len())];
            all.push(KMeans::new(k).cluster(data, rng));
        }
        self.group(all)
    }

    /// Runs meta clustering over an explicit portfolio of base clusterers
    /// (cycled across runs) — the "different clustering algorithms" source
    /// of diversity.
    pub fn fit_with_portfolio(
        &self,
        data: &Dataset,
        portfolio: &[&dyn Clusterer],
        rng: &mut StdRng,
    ) -> MetaClusteringResult {
        assert!(!portfolio.is_empty(), "portfolio must not be empty");
        let mut all = Vec::with_capacity(self.runs);
        for r in 0..self.runs {
            all.push(portfolio[r % portfolio.len()].cluster(data, rng));
        }
        self.group(all)
    }

    /// Groups generated solutions by single-link closure over the Rand
    /// similarity graph and picks medoid representatives.
    fn group(&self, all: Vec<Clustering>) -> MetaClusteringResult {
        let n = all.len();
        // Pairwise Rand similarities through the shared symmetric-matrix
        // builder: each strict upper-triangle row is independent, so rows
        // compute in parallel (bit-identical at any thread count); the
        // mirror pass below stays serial and cheap.
        let pairwise =
            SymmetricMatrix::build(n, |i, j| rand_index(&all[i], &all[j]));
        let mut sim = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            sim[i][i] = 1.0;
            for j in (i + 1)..n {
                let s = pairwise.get(i, j);
                sim[i][j] = s;
                sim[j][i] = s;
            }
        }
        // Union-find single-link grouping at the threshold.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        #[allow(clippy::needless_range_loop)] // pairwise indices feed union-find
        for i in 0..n {
            for j in (i + 1)..n {
                if sim[i][j] >= self.similarity_threshold {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups_map: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups_map.entry(root).or_default().push(i);
        }
        let groups: Vec<Vec<usize>> = groups_map.into_values().collect();
        // Medoid representative per group.
        let representatives = groups
            .iter()
            .map(|g| {
                let medoid = *g
                    .iter()
                    .max_by(|&&a, &&b| {
                        let sa: f64 = g.iter().map(|&x| sim[a][x]).sum();
                        let sb: f64 = g.iter().map(|&x| sim[b][x]).sum();
                        sa.partial_cmp(&sb).unwrap()
                    })
                    .expect("groups are non-empty");
                all[medoid].clone()
            })
            .collect();
        MetaClusteringResult { all, groups, representatives }
    }

    /// Taxonomy card (slide 116 row "(Caruana et al., 2006)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "MetaClustering",
            reference: "Caruana et al. 2006",
            space: SearchSpace::Original,
            processing: Processing::Independent,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::AtLeastTwo,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::ExchangeableDefinition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    #[test]
    fn four_blobs_yield_few_groups() {
        let mut rng = seeded_rng(71);
        let fb = four_blob_square(30, 12.0, 0.6, &mut rng);
        let meta = MetaClustering::new(40, vec![2], 0.95);
        let res = meta.fit(&fb.dataset, &mut rng);
        assert_eq!(res.all.len(), 40);
        // 2-means on the square has a handful of attractors (horizontal,
        // vertical, diagonal); 40 blind runs collapse into few groups.
        assert!(res.groups.len() <= 6, "groups: {}", res.groups.len());
        assert!(res.groups.len() >= 2, "multiple distinct solutions expected");
        assert_eq!(res.representatives.len(), res.groups.len());
    }

    #[test]
    fn groups_partition_the_runs() {
        let mut rng = seeded_rng(72);
        let fb = four_blob_square(20, 10.0, 0.8, &mut rng);
        let res = MetaClustering::new(15, vec![2, 3], 0.9).fit(&fb.dataset, &mut rng);
        let mut seen = vec![false; res.all.len()];
        for g in &res.groups {
            for &i in g {
                assert!(!seen[i], "run {i} in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn threshold_one_separates_everything_distinct() {
        let mut rng = seeded_rng(73);
        let fb = four_blob_square(10, 10.0, 0.5, &mut rng);
        let strict = MetaClustering::new(10, vec![2], 1.0).fit(&fb.dataset, &mut rng);
        let loose = MetaClustering::new(10, vec![2], 0.0).fit(&fb.dataset, &mut rng);
        assert!(strict.groups.len() >= loose.groups.len());
        assert_eq!(loose.groups.len(), 1, "threshold 0 merges all runs");
    }

    #[test]
    fn portfolio_cycles_algorithms() {
        let mut rng = seeded_rng(74);
        let fb = four_blob_square(10, 10.0, 0.5, &mut rng);
        let km2 = KMeans::new(2);
        let km4 = KMeans::new(4);
        let portfolio: Vec<&dyn Clusterer> = vec![&km2, &km4];
        let res = MetaClustering::new(6, vec![2], 0.9).fit_with_portfolio(
            &fb.dataset,
            &portfolio,
            &mut rng,
        );
        // Runs alternate k=2 / k=4 solutions.
        assert_eq!(res.all[0].num_clusters(), 2);
        assert_eq!(res.all[1].num_clusters(), 4);
    }
}
