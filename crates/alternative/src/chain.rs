//! Chaining strategies for generating more than one alternative —
//! the drawback discussion of slides 37–38.
//!
//! Alternative-clustering methods produce *one* alternative to the given
//! knowledge. To obtain `m > 2` solutions the tutorial contrasts
//!
//! * the **naive chain** `C₁ → C₂ → C₃ → …`, where each step conditions
//!   only on the immediately preceding solution — `Diss(C₁,C₂)` and
//!   `Diss(C₂,C₃)` are high, but nothing keeps `C₃` away from `C₁`
//!   ("often/usually they should be very similar"), and
//! * the **cumulative chain**, where step `t` conditions on *all* previous
//!   solutions (`given Clust₁ and Clust₂ → extract Clust₃ …`).
//!
//! Experiment E5 quantifies the difference. Both strategies wrap any
//! [`AlternativeClusterer`].

use multiclust_core::Clustering;
use multiclust_data::Dataset;
use rand::rngs::StdRng;

use crate::AlternativeClusterer;

/// Runs the naive chain: returns `[C₂, …, C_{m}]` where each solution is an
/// alternative only to its predecessor (with `C₁ = initial`).
pub fn naive_chain(
    alt: &dyn AlternativeClusterer,
    data: &Dataset,
    initial: &Clustering,
    extra: usize,
    rng: &mut StdRng,
) -> Vec<Clustering> {
    let mut out: Vec<Clustering> = Vec::with_capacity(extra);
    let mut previous = initial.clone();
    for _ in 0..extra {
        let next = alt.alternative(data, &[&previous], rng);
        previous = next.clone();
        out.push(next);
    }
    out
}

/// Runs the cumulative chain: solution `t` is an alternative to `initial`
/// **and** every solution generated so far.
pub fn cumulative_chain(
    alt: &dyn AlternativeClusterer,
    data: &Dataset,
    initial: &Clustering,
    extra: usize,
    rng: &mut StdRng,
) -> Vec<Clustering> {
    let mut out: Vec<Clustering> = Vec::with_capacity(extra);
    for _ in 0..extra {
        let mut given: Vec<&Clustering> = vec![initial];
        given.extend(out.iter());
        out.push(alt.alternative(data, &given, rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_centropy::MinCEntropy;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::{planted_views, ViewSpec};
    use multiclust_data::seeded_rng;

    /// Three independent planted views: the cumulative chain should cover
    /// them; the naive chain is free to oscillate back to view 1.
    #[test]
    fn cumulative_chain_keeps_all_pairs_dissimilar() {
        let mut rng = seeded_rng(131);
        let spec = ViewSpec { dims: 2, clusters: 2, separation: 12.0, noise: 0.8 };
        let planted = planted_views(120, &[spec, spec, spec], 0, &mut rng);
        let initial = Clustering::from_labels(&planted.truths[0]);
        let alt = MinCEntropy::new(2, 3.0);

        let chain = cumulative_chain(&alt, &planted.dataset, &initial, 2, &mut rng);
        assert_eq!(chain.len(), 2);
        // All three solutions pairwise dissimilar.
        let all = [&initial, &chain[0], &chain[1]];
        for i in 0..3 {
            for j in (i + 1)..3 {
                let ari = adjusted_rand_index(all[i], all[j]);
                assert!(ari < 0.5, "pair ({i},{j}) too similar: {ari}");
            }
        }
    }

    #[test]
    fn naive_chain_produces_requested_count() {
        let mut rng = seeded_rng(132);
        let spec = ViewSpec { dims: 2, clusters: 2, separation: 12.0, noise: 0.8 };
        let planted = planted_views(80, &[spec, spec], 0, &mut rng);
        let initial = Clustering::from_labels(&planted.truths[0]);
        let alt = MinCEntropy::new(2, 3.0);
        let chain = naive_chain(&alt, &planted.dataset, &initial, 3, &mut rng);
        assert_eq!(chain.len(), 3);
        // Consecutive solutions are dissimilar by construction.
        let d01 = adjusted_rand_index(&initial, &chain[0]);
        assert!(d01 < 0.5, "first alternative diverges from initial: {d01}");
    }
}
