//! Decorrelated k-Means (Jain, Meka & Dhillon 2008) — slides 40–42.
//!
//! Simultaneously learns `T ≥ 2` clusterings. Each clustering `t` is a set
//! of *representative* vectors `r₁ᵗ..r_{k_t}ᵗ`; objects are assigned to the
//! nearest representative. Representatives need not equal the cluster
//! means `αᵢᵗ` — the decorrelation term pulls them away. The objective
//! (slide 41, generalised from two clusterings to `T`) is
//!
//! ```text
//! G = Σ_t Σ_i Σ_{x ∈ C_iᵗ} ‖x − r_iᵗ‖²                (compactness)
//!   + λ Σ_{t ≠ t'} Σ_{i,j} ((β_jᵗ')ᵀ · r_iᵗ)²          (decorrelation)
//! ```
//!
//! Minimising over `r_iᵗ` with assignments fixed gives the closed form
//! `(|C_iᵗ| I + λ B_t) r_iᵗ = |C_iᵗ| α_iᵗ`, where
//! `B_t = Σ_{t'≠t} Σ_j β_jᵗ' (β_jᵗ')ᵀ` is the scatter of the *other*
//! clusterings' means; the algorithm alternates assignments and these
//! solves. Data is centred internally (orthogonality of directions is
//! meaningful around the origin).

use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::kernels::{sq_norms, NearestAssign};
use multiclust_linalg::vector::{dot, sq_dist};
use multiclust_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

use multiclust_base::kmeans::plus_plus_init;

/// Decorrelated k-Means configuration.
#[derive(Clone, Debug)]
pub struct DecKMeans {
    ks: Vec<usize>,
    lambda: f64,
    max_iter: usize,
}

/// Result of a Dec-kMeans run.
#[derive(Clone, Debug)]
pub struct DecKMeansResult {
    /// One clustering per requested solution.
    pub clusterings: Vec<Clustering>,
    /// `representatives[t][i]` is representative `i` of clustering `t`
    /// (in the *centred* coordinate system).
    pub representatives: Vec<Vec<Vec<f64>>>,
    /// Final objective value `G`.
    pub objective: f64,
    /// Alternation iterations performed.
    pub iterations: usize,
}

impl DecKMeans {
    /// One entry of `ks` per desired clustering (e.g. `&[2, 2]` for two
    /// 2-clusterings), default `λ = 1`, 100 iterations.
    ///
    /// # Panics
    /// Panics when fewer than two clusterings are requested or any `k` is
    /// zero.
    pub fn new(ks: &[usize]) -> Self {
        assert!(ks.len() >= 2, "Dec-kMeans produces T ≥ 2 clusterings");
        assert!(ks.iter().all(|&k| k >= 1), "every k must be positive");
        Self { ks: ks.to_vec(), lambda: 1.0, max_iter: 100 }
    }

    /// Sets the decorrelation weight `λ`.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda >= 0.0, "λ must be non-negative");
        self.lambda = lambda;
        self
    }

    /// Sets the maximum alternation iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Runs the alternating minimisation.
    ///
    /// # Panics
    /// Panics when the dataset has fewer objects than `max(ks)`.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> DecKMeansResult {
        let _span = multiclust_telemetry::span("dec_kmeans.fit");
        let n = data.len();
        let d = data.dims();
        let t_count = self.ks.len();
        assert!(
            n >= *self.ks.iter().max().expect("non-empty ks"),
            "need at least max(k) objects"
        );

        // Centre the data.
        let mean = data.mean();
        let centred = {
            let mut rows = Vec::with_capacity(n);
            for row in data.rows() {
                rows.push(row.iter().zip(&mean).map(|(x, m)| x - m).collect::<Vec<_>>());
            }
            Dataset::from_rows(&rows)
        };

        // Initialise representatives per clustering with k-means++.
        let mut reps: Vec<Vec<Vec<f64>>> = self
            .ks
            .iter()
            .map(|&k| plus_plus_init(&centred, k, rng))
            .collect();
        let mut labels: Vec<Vec<usize>> = vec![vec![0; n]; t_count];
        let mut iterations = 0;
        // One bound-pruned assigner per clustering, all sharing the row
        // norms of the centred data; labels are bit-identical to the
        // exhaustive `nearest` scan per point. Representatives move a lot
        // between alternations (the decorrelation solve drags them away
        // from the means), which inflates the Hamerly drift bounds — the
        // assigner's per-pass adaptive bypass detects this and switches to
        // the panel-vectorized full scan (`kernels.assign.bypass`) instead
        // of paying bound bookkeeping that prunes nothing.
        let norms = sq_norms(d, centred.as_slice());
        let mut assigners: Vec<NearestAssign> =
            (0..t_count).map(|_| NearestAssign::new(n)).collect();

        for it in 0..self.max_iter {
            iterations = it + 1;
            let mut changed = false;

            // Assignment step for every clustering.
            for (t, rep_t) in reps.iter().enumerate() {
                assigners[t].assign(d, centred.as_slice(), &norms, rep_t);
                for (i, &c) in assigners[t].labels().iter().enumerate() {
                    if labels[t][i] != c {
                        labels[t][i] = c;
                        changed = true;
                    }
                }
            }

            // Means per cluster per clustering.
            let means = compute_means(&centred, &labels, &self.ks, rng);

            // Representative solves per clustering.
            for t in 0..t_count {
                // B_t = Σ_{t'≠t} Σ_j β_j β_jᵀ.
                let mut b = Matrix::zeros(d, d);
                for (tp, means_tp) in means.iter().enumerate() {
                    if tp == t {
                        continue;
                    }
                    for beta in means_tp {
                        for a in 0..d {
                            for c in 0..d {
                                b[(a, c)] += beta[a] * beta[c];
                            }
                        }
                    }
                }
                let counts = cluster_counts(&labels[t], self.ks[t]);
                for i in 0..self.ks[t] {
                    let ci = counts[i] as f64;
                    // (ci·I + λB) r = ci·α
                    let mut m = b.scaled(self.lambda);
                    for a in 0..d {
                        m[(a, a)] += ci;
                    }
                    let rhs: Vec<f64> = means[t][i].iter().map(|&x| ci * x).collect();
                    // ci·I + λB is positive definite in exact arithmetic,
                    // but wildly mixed feature scales can make it numerically
                    // singular; fall back to the unregularised representative
                    // r = α rather than panicking.
                    reps[t][i] = match m.inverse() {
                        Some(inv) => inv.matvec(&rhs),
                        None => means[t][i].clone(),
                    };
                }
            }

            // Objective trace: G after this alternation round. The means
            // are recomputed from state that already exists; nothing the
            // algorithm later reads is touched.
            if multiclust_telemetry::enabled() {
                let g = self.objective(&centred, &labels, &reps, &means);
                multiclust_telemetry::event(
                    "dec_kmeans.iter",
                    &[
                        ("iter", it as f64),
                        ("objective", g),
                        ("changed", f64::from(changed)),
                    ],
                );
            }

            if !changed && it > 0 {
                break;
            }
        }
        multiclust_telemetry::counter_add("dec_kmeans.iterations", iterations as u64);
        multiclust_telemetry::event(
            "dec_kmeans.done",
            &[("iterations", iterations as f64), ("budget", self.max_iter as f64)],
        );

        // Final assignments and objective.
        for (t, rep_t) in reps.iter().enumerate() {
            assigners[t].assign(d, centred.as_slice(), &norms, rep_t);
            labels[t].copy_from_slice(assigners[t].labels());
        }
        let means = compute_means(&centred, &labels, &self.ks, rng);
        let objective = self.objective(&centred, &labels, &reps, &means);
        let clusterings = labels
            .iter()
            .map(|l| Clustering::from_labels(l))
            .collect();
        DecKMeansResult { clusterings, representatives: reps, objective, iterations }
    }

    /// Evaluates the objective `G` (slide 41).
    fn objective(
        &self,
        centred: &Dataset,
        labels: &[Vec<usize>],
        reps: &[Vec<Vec<f64>>],
        means: &[Vec<Vec<f64>>],
    ) -> f64 {
        let mut compactness = 0.0;
        for (t, labels_t) in labels.iter().enumerate() {
            for (i, row) in centred.rows().enumerate() {
                compactness += sq_dist(row, &reps[t][labels_t[i]]);
            }
        }
        let mut decorrelation = 0.0;
        for (t, reps_t) in reps.iter().enumerate() {
            for (tp, means_tp) in means.iter().enumerate() {
                if t == tp {
                    continue;
                }
                for r in reps_t {
                    for beta in means_tp {
                        let ip = dot(beta, r);
                        decorrelation += ip * ip;
                    }
                }
            }
        }
        compactness + self.lambda * decorrelation
    }

    /// Taxonomy card (slide 116 row "(Jain et al., 2008)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "DecKMeans",
            reference: "Jain et al. 2008",
            space: SearchSpace::Original,
            processing: Processing::Simultaneous,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::AtLeastTwo,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }
}

fn cluster_counts(labels: &[usize], k: usize) -> Vec<usize> {
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    counts
}

/// Cluster means per clustering; empty clusters are re-seeded on a random
/// object to keep all `k` representatives alive.
fn compute_means(
    centred: &Dataset,
    labels: &[Vec<usize>],
    ks: &[usize],
    rng: &mut StdRng,
) -> Vec<Vec<Vec<f64>>> {
    let d = centred.dims();
    let n = centred.len();
    labels
        .iter()
        .zip(ks)
        .map(|(labels_t, &k)| {
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (i, row) in centred.rows().enumerate() {
                counts[labels_t[i]] += 1;
                for (s, &x) in sums[labels_t[i]].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for (sum, &count) in sums.iter_mut().zip(&counts) {
                if count == 0 {
                    *sum = centred.row(rng.gen_range(0..n)).to_vec();
                } else {
                    for s in sum.iter_mut() {
                        *s /= count as f64;
                    }
                }
            }
            sums
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    /// Best assignment of found clusterings to the two ground truths:
    /// returns (max over matchings of min ARI).
    fn both_views_recovered(
        found: &[Clustering],
        horizontal: &Clustering,
        vertical: &Clustering,
    ) -> f64 {
        let a_h = adjusted_rand_index(&found[0], horizontal);
        let a_v = adjusted_rand_index(&found[1], vertical);
        let b_h = adjusted_rand_index(&found[1], horizontal);
        let b_v = adjusted_rand_index(&found[0], vertical);
        (a_h.min(a_v)).max(b_h.min(b_v))
    }

    #[test]
    fn recovers_both_splits_of_the_square() {
        let mut rng = seeded_rng(91);
        let fb = four_blob_square(40, 10.0, 0.7, &mut rng);
        let horizontal = Clustering::from_labels(&fb.horizontal);
        let vertical = Clustering::from_labels(&fb.vertical);
        // A couple of restarts guard against unlucky seeding.
        let mut best = f64::NEG_INFINITY;
        for _ in 0..5 {
            let res = DecKMeans::new(&[2, 2]).with_lambda(10.0).fit(&fb.dataset, &mut rng);
            best = best.max(both_views_recovered(
                &res.clusterings,
                &horizontal,
                &vertical,
            ));
        }
        assert!(best > 0.9, "both orthogonal splits recovered: {best}");
    }

    #[test]
    fn solutions_are_mutually_dissimilar() {
        let mut rng = seeded_rng(92);
        let fb = four_blob_square(30, 10.0, 0.7, &mut rng);
        let res = DecKMeans::new(&[2, 2]).with_lambda(10.0).fit(&fb.dataset, &mut rng);
        let cross = adjusted_rand_index(&res.clusterings[0], &res.clusterings[1]);
        assert!(cross < 0.3, "decorrelated solutions disagree: {cross}");
    }

    #[test]
    fn lambda_zero_decouples_into_plain_kmeans() {
        let mut rng = seeded_rng(93);
        let fb = four_blob_square(20, 10.0, 0.6, &mut rng);
        let res = DecKMeans::new(&[2, 2]).with_lambda(0.0).fit(&fb.dataset, &mut rng);
        // Without decorrelation both solutions are free to coincide; the
        // objective reduces to the sum of two k-means SSEs, so
        // representatives equal means. Verify representatives ≈ means by
        // checking the decorrelation-free objective equals the SSE sum.
        assert!(res.objective > 0.0);
        assert_eq!(res.clusterings.len(), 2);
    }

    #[test]
    fn supports_three_solutions() {
        let mut rng = seeded_rng(94);
        let fb = four_blob_square(15, 10.0, 0.6, &mut rng);
        let res = DecKMeans::new(&[2, 2, 2]).with_lambda(5.0).fit(&fb.dataset, &mut rng);
        assert_eq!(res.clusterings.len(), 3);
        assert_eq!(res.representatives.len(), 3);
        assert!(res.objective.is_finite());
    }

    #[test]
    fn higher_lambda_shrinks_decorrelation_term() {
        let mut rng = seeded_rng(95);
        let fb = four_blob_square(25, 10.0, 0.7, &mut rng);
        // The decorrelation sum Σ (βᵀr)² must fall as λ rises (averaged
        // over restarts to wash out seeding noise).
        let decorr_term = |res: &DecKMeansResult, data: &Dataset| -> f64 {
            // Recompute means of each clustering in centred coordinates.
            let mean = data.mean();
            let centred_rows: Vec<Vec<f64>> = data
                .rows()
                .map(|r| r.iter().zip(&mean).map(|(x, m)| x - m).collect())
                .collect();
            let mut total = 0.0;
            for (t, reps_t) in res.representatives.iter().enumerate() {
                for (tp, clu) in res.clusterings.iter().enumerate() {
                    if t == tp {
                        continue;
                    }
                    for members in clu.members() {
                        if members.is_empty() {
                            continue;
                        }
                        let mut beta = vec![0.0; centred_rows[0].len()];
                        for &i in &members {
                            for (b, &x) in beta.iter_mut().zip(&centred_rows[i]) {
                                *b += x;
                            }
                        }
                        for b in &mut beta {
                            *b /= members.len() as f64;
                        }
                        for r in reps_t {
                            let ip = dot(&beta, r);
                            total += ip * ip;
                        }
                    }
                }
            }
            total
        };
        let mut weak_sum = 0.0;
        let mut strong_sum = 0.0;
        for _ in 0..5 {
            let weak = DecKMeans::new(&[2, 2]).with_lambda(0.01).fit(&fb.dataset, &mut rng);
            let strong = DecKMeans::new(&[2, 2]).with_lambda(50.0).fit(&fb.dataset, &mut rng);
            weak_sum += decorr_term(&weak, &fb.dataset);
            strong_sum += decorr_term(&strong, &fb.dataset);
        }
        assert!(
            strong_sum < weak_sum,
            "strong λ decorrelates: {strong_sum} vs {weak_sum}"
        );
    }

    #[test]
    #[should_panic(expected = "T ≥ 2")]
    fn single_clustering_rejected() {
        let _ = DecKMeans::new(&[3]);
    }
}
