//! CAMI — Clustering for Alternatives with Mutual Information
//! (Dang & Bailey 2010a) — slide 43.
//!
//! A generative, *simultaneous* approach: each of the two clusterings is a
//! Gaussian mixture `Θ_t`, and the combined objective
//!
//! ```text
//! maximise  L(Θ₁, DB) + L(Θ₂, DB)  −  μ · I(Θ₁, Θ₂)
//! ```
//!
//! trades likelihood of both models against the mutual information between
//! their cluster variables. Following the paper, the decorrelation term is
//! evaluated at the **parameter level** — component-pair overlap
//! `Σ_{j,j'} λ_j λ_{j'} K(μ_j, μ_{j'})` with a Gaussian overlap kernel —
//! rather than on assignments. This matters: any assignment-level penalty
//! is blind to label swaps (relabelling the same partition maximises
//! "dissimilarity" while changing nothing), whereas parameter overlap is
//! permutation-invariant, so the only way to reduce it is to place the
//! second model's components at *genuinely different* positions.
//! Optimisation alternates standard EM sweeps with a repulsion step on the
//! means along the overlap gradient.

use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::{Clustering, SoftClustering};
use multiclust_data::synthetic::gauss;
use multiclust_data::Dataset;
use multiclust_linalg::vector::sq_dist;
use multiclust_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;

use multiclust_base::gmm::Component;
use multiclust_base::kmeans::plus_plus_init;

/// CAMI configuration: two mixtures of `k1`/`k2` components and the
/// decorrelation weight `μ`.
#[derive(Clone, Debug)]
pub struct Cami {
    k1: usize,
    k2: usize,
    mu: f64,
    max_iter: usize,
    reg: f64,
}

/// Result of a CAMI run.
#[derive(Clone, Debug)]
pub struct CamiResult {
    /// Hard clusterings of the two mixtures.
    pub clusterings: [Clustering; 2],
    /// Soft assignments of the two mixtures.
    pub soft: [SoftClustering; 2],
    /// Fitted components of both models.
    pub components: [Vec<Component>; 2],
    /// Final objective `L₁ + L₂ − μ·overlap`.
    pub objective: f64,
    /// Mutual information between the two soft clusterings at convergence
    /// (diagnostic; the decorrelation the paper's objective targets).
    pub mutual_information: f64,
    /// Component-overlap penalty at convergence.
    pub overlap: f64,
    /// Alternation iterations performed.
    pub iterations: usize,
}

impl Cami {
    /// Two mixtures with `k1` and `k2` components, decorrelation `μ`
    /// (`μ = 0` decouples into two independent EM fits).
    pub fn new(k1: usize, k2: usize, mu: f64) -> Self {
        assert!(k1 >= 1 && k2 >= 1, "component counts must be positive");
        assert!(mu >= 0.0, "μ must be non-negative");
        Self { k1, k2, mu, max_iter: 80, reg: 1e-4 }
    }

    /// Sets the maximum alternation iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Runs the alternating EM with overlap repulsion.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> CamiResult {
        let n = data.len();
        assert!(n >= self.k1.max(self.k2), "need at least max(k) objects");
        let d = data.dims();

        let init_components = |k: usize, rng: &mut StdRng| -> Vec<Component> {
            let means = plus_plus_init(data, k, rng);
            let cov = global_covariance(data, self.reg);
            means
                .into_iter()
                .map(|mean| Component { weight: 1.0 / k as f64, mean, cov: cov.clone() })
                .collect()
        };
        let mut comps = [init_components(self.k1, rng), init_components(self.k2, rng)];
        let mut resp = [
            vec![vec![1.0 / self.k1 as f64; self.k1]; n],
            vec![vec![1.0 / self.k2 as f64; self.k2]; n],
        ];
        let mut lls = [0.0f64; 2];
        let mut iterations = 0;

        for it in 0..self.max_iter {
            iterations = it + 1;
            for m in 0..2 {
                let other = 1 - m;
                lls[m] = e_step(data, &comps[m], &mut resp[m]);
                m_step(data, &resp[m], &mut comps[m], d, self.reg);
                if self.mu > 0.0 {
                    let other_comps = comps[other].clone();
                    repel_means(&mut comps[m], &other_comps, self.mu, rng);
                }
            }
        }
        // Final E-step for honest likelihoods and assignments.
        for m in 0..2 {
            lls[m] = e_step(data, &comps[m], &mut resp[m]);
        }
        let mi = soft_mutual_information(&resp[0], &resp[1]);
        let overlap = component_overlap(&comps[0], &comps[1]);
        let soft0 = SoftClustering::new(normalize_rows(resp[0].clone()));
        let soft1 = SoftClustering::new(normalize_rows(resp[1].clone()));
        CamiResult {
            clusterings: [soft0.to_hard(), soft1.to_hard()],
            soft: [soft0, soft1],
            components: comps,
            objective: lls[0] + lls[1] - self.mu * overlap,
            mutual_information: mi,
            overlap,
            iterations,
        }
    }

    /// Taxonomy card (slide 116 row "(Dang & Bailey, 2010a)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "CAMI",
            reference: "Dang & Bailey 2010a",
            space: SearchSpace::Original,
            processing: Processing::Simultaneous,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::AtLeastTwo,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }
}

/// Mutual information (nats) between two soft clusterings, from the joint
/// soft-count distribution `p(a,b) = (1/n) Σ_i r₁[i][a]·r₂[i][b]`.
pub fn soft_mutual_information(r1: &[Vec<f64>], r2: &[Vec<f64>]) -> f64 {
    let n = r1.len() as f64;
    if r1.is_empty() {
        return 0.0;
    }
    let k1 = r1[0].len();
    let k2 = r2[0].len();
    let mut joint = vec![vec![0.0; k2]; k1];
    for (ra, rb) in r1.iter().zip(r2) {
        for (a, &pa) in ra.iter().enumerate() {
            for (b, &pb) in rb.iter().enumerate() {
                joint[a][b] += pa * pb;
            }
        }
    }
    let mut pa = vec![0.0; k1];
    let mut pb = vec![0.0; k2];
    for (a, row) in joint.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            *cell /= n;
            pa[a] += *cell;
            pb[b] += *cell;
        }
    }
    let mut mi = 0.0;
    for (a, row) in joint.iter().enumerate() {
        for (b, &p) in row.iter().enumerate() {
            if p > 1e-300 && pa[a] > 0.0 && pb[b] > 0.0 {
                mi += p * (p / (pa[a] * pb[b])).ln();
            }
        }
    }
    mi.max(0.0)
}

/// Component-pair overlap `Σ_{j,j'} λ_j λ_{j'} exp(−‖μ_j−μ_{j'}‖²/(2s²))`,
/// the parameter-level surrogate for `I(Θ₁,Θ₂)`; `s²` is the mean
/// per-dimension variance across all components of both models.
pub fn component_overlap(a: &[Component], b: &[Component]) -> f64 {
    let s2 = bandwidth_sq(a, b);
    let mut total = 0.0;
    for ca in a {
        for cb in b {
            let d2 = sq_dist(&ca.mean, &cb.mean);
            total += ca.weight * cb.weight * (-d2 / (2.0 * s2)).exp();
        }
    }
    total
}

fn bandwidth_sq(a: &[Component], b: &[Component]) -> f64 {
    let mut s = 0.0;
    let mut count = 0.0;
    for c in a.iter().chain(b) {
        s += c.cov.trace() / c.mean.len() as f64;
        count += 1.0;
    }
    (s / count).max(1e-12)
}

/// Moves each mean of `comps` along the gradient that *decreases* its
/// overlap with `other`'s components: `μ_j ← μ_j + μ Σ_{j'} K·(μ_j−μ_{j'})`.
/// Coincident means receive a random jitter of scale `0.1·s` to break the
/// tie. Forces vanish once components are separated (K → 0), so genuinely
/// alternative placements are fixed points.
fn repel_means(comps: &mut [Component], other: &[Component], mu: f64, rng: &mut StdRng) {
    let s2 = bandwidth_sq(comps, other);
    let s = s2.sqrt();
    for c in comps.iter_mut() {
        let mut push = vec![0.0; c.mean.len()];
        for o in other {
            let d2 = sq_dist(&c.mean, &o.mean);
            let k = (-d2 / (2.0 * s2)).exp();
            if k < 1e-6 {
                continue;
            }
            if d2 < 1e-12 * s2 {
                // Tie: jitter.
                for p in push.iter_mut() {
                    *p += k * 0.1 * s * gauss(rng);
                }
            } else {
                for (p, (&m, &om)) in push.iter_mut().zip(c.mean.iter().zip(&o.mean)) {
                    *p += k * (m - om);
                }
            }
        }
        for (m, p) in c.mean.iter_mut().zip(&push) {
            *m += mu * p;
        }
    }
}

/// One standard E-step; returns the total log-likelihood.
fn e_step(data: &Dataset, comps: &[Component], resp: &mut [Vec<f64>]) -> f64 {
    let factors: Vec<(Cholesky, f64)> = comps
        .iter()
        .map(|c| {
            let ch = Cholesky::new(&c.cov).expect("regularised covariance is SPD");
            let log_norm = -0.5
                * (c.mean.len() as f64 * (2.0 * std::f64::consts::PI).ln() + ch.log_det());
            (ch, log_norm)
        })
        .collect();
    let mut total_ll = 0.0;
    for (i, row) in data.rows().enumerate() {
        let log_p: Vec<f64> = comps
            .iter()
            .zip(&factors)
            .map(|(c, (ch, log_norm))| {
                c.weight.max(1e-300).ln() + log_norm - 0.5 * ch.mahalanobis_sq(row, &c.mean)
            })
            .collect();
        let max = log_p.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let log_sum = max + log_p.iter().map(|&l| (l - max).exp()).sum::<f64>().ln();
        total_ll += log_sum;
        for (r, &l) in resp[i].iter_mut().zip(&log_p) {
            *r = (l - log_sum).exp();
        }
    }
    total_ll
}

/// Standard weighted Gaussian M-step with ridge regularisation.
fn m_step(data: &Dataset, resp: &[Vec<f64>], comps: &mut [Component], d: usize, reg: f64) {
    let n = data.len() as f64;
    for (j, comp) in comps.iter_mut().enumerate() {
        let nj: f64 = resp.iter().map(|r| r[j]).sum::<f64>().max(1e-12);
        comp.weight = nj / n;
        let mut mean = vec![0.0; d];
        for (row, r) in data.rows().zip(resp) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += r[j] * x;
            }
        }
        for m in &mut mean {
            *m /= nj;
        }
        let mut cov = Matrix::zeros(d, d);
        for (row, r) in data.rows().zip(resp) {
            let w = r[j];
            if w == 0.0 {
                continue;
            }
            for a in 0..d {
                let da = row[a] - mean[a];
                for b in a..d {
                    cov[(a, b)] += w * da * (row[b] - mean[b]);
                }
            }
        }
        for a in 0..d {
            for b in a..d {
                let v = cov[(a, b)] / nj;
                cov[(a, b)] = v;
                cov[(b, a)] = v;
            }
            cov[(a, a)] += reg;
        }
        comp.mean = mean;
        comp.cov = cov;
    }
}

fn global_covariance(data: &Dataset, reg: f64) -> Matrix {
    let d = data.dims();
    let n = data.len() as f64;
    let mean = data.mean();
    let mut cov = Matrix::zeros(d, d);
    for row in data.rows() {
        for a in 0..d {
            let da = row[a] - mean[a];
            for b in a..d {
                cov[(a, b)] += da * (row[b] - mean[b]);
            }
        }
    }
    for a in 0..d {
        for b in a..d {
            let v = cov[(a, b)] / n;
            cov[(a, b)] = v;
            cov[(b, a)] = v;
        }
        cov[(a, a)] += reg;
    }
    cov
}

/// Renormalises rows to sum exactly to one (guards `SoftClustering`'s
/// validation against accumulated rounding).
fn normalize_rows(mut rows: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    for row in &mut rows {
        let s: f64 = row.iter().sum();
        if s > 0.0 {
            for x in row.iter_mut() {
                *x /= s;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;

    #[test]
    fn recovers_two_decorrelated_views() {
        let mut rng = seeded_rng(111);
        let fb = four_blob_square(30, 10.0, 0.7, &mut rng);
        let horizontal = Clustering::from_labels(&fb.horizontal);
        let vertical = Clustering::from_labels(&fb.vertical);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..8 {
            let res = Cami::new(2, 2, 1.0).fit(&fb.dataset, &mut rng);
            let a = adjusted_rand_index(&res.clusterings[0], &horizontal)
                .min(adjusted_rand_index(&res.clusterings[1], &vertical));
            let b = adjusted_rand_index(&res.clusterings[1], &horizontal)
                .min(adjusted_rand_index(&res.clusterings[0], &vertical));
            best = best.max(a.max(b));
        }
        assert!(best > 0.85, "CAMI recovers both planted views: {best}");
    }

    #[test]
    fn mu_reduces_mutual_information() {
        let mut rng = seeded_rng(112);
        let fb = four_blob_square(25, 10.0, 0.7, &mut rng);
        let mut mi_free = 0.0;
        let mut mi_pen = 0.0;
        for _ in 0..5 {
            mi_free += Cami::new(2, 2, 0.0).fit(&fb.dataset, &mut rng).mutual_information;
            mi_pen += Cami::new(2, 2, 1.0).fit(&fb.dataset, &mut rng).mutual_information;
        }
        assert!(
            mi_pen < mi_free,
            "penalty lowers inter-clustering MI: {mi_pen} vs {mi_free}"
        );
    }

    #[test]
    fn soft_mi_of_identical_vs_independent() {
        // Identical hard assignments → MI = ln 2 for balanced 2-clusterings.
        let hard = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![0.0, 1.0]];
        let mi_same = soft_mutual_information(&hard, &hard);
        assert!((mi_same - std::f64::consts::LN_2).abs() < 1e-9);
        // Independent assignments → MI = 0.
        let other = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(soft_mutual_information(&hard, &other) < 1e-9);
        // Uniform soft assignments carry no information at all.
        let uniform = vec![vec![0.5, 0.5]; 4];
        assert!(soft_mutual_information(&uniform, &uniform) < 1e-9);
    }

    #[test]
    fn overlap_is_permutation_invariant() {
        let c = |x: f64, y: f64| Component {
            weight: 0.5,
            mean: vec![x, y],
            cov: Matrix::identity(2),
        };
        let a = vec![c(0.0, 0.0), c(5.0, 0.0)];
        let b_fwd = vec![c(0.0, 0.0), c(5.0, 0.0)];
        let b_swap = vec![c(5.0, 0.0), c(0.0, 0.0)];
        let o1 = component_overlap(&a, &b_fwd);
        let o2 = component_overlap(&a, &b_swap);
        assert!((o1 - o2).abs() < 1e-12, "label swap cannot hide overlap");
        let b_far = vec![c(0.0, 50.0), c(5.0, 50.0)];
        assert!(component_overlap(&a, &b_far) < 0.01 * o1);
    }

    #[test]
    fn objective_and_counts_are_finite() {
        let mut rng = seeded_rng(113);
        let fb = four_blob_square(10, 8.0, 0.8, &mut rng);
        let res = Cami::new(2, 3, 1.0).fit(&fb.dataset, &mut rng);
        assert!(res.objective.is_finite());
        assert_eq!(res.clusterings[0].len(), 40);
        assert_eq!(res.soft[1].num_clusters(), 3);
        assert_eq!(res.components[0].len(), 2);
        assert!(res.iterations > 0);
        assert!(res.overlap >= 0.0);
    }
}
