//! Multiple clustering solutions **by orthogonal space transformations**
//! (tutorial section 3, slides 47–62).
//!
//! Instead of checking dissimilarity inside the clustering process, these
//! methods *transform the database* so that the known structure disappears
//! and previously weak structure is highlighted; any clustering algorithm
//! can then be applied to the transformed data (`DB₂ = {M·x | x ∈ DB}`,
//! slide 49). Dissimilarity to the given clustering is only implicitly
//! ensured — a property the experiments quantify.
//!
//! * [`metric_flip`] — learn a metric that makes the given clustering easy
//!   to see, then **invert the stretcher** of its SVD
//!   (Davidson & Qi 2008, slides 50–52);
//! * [`qi_davidson`] — the constrained-optimisation transformation with
//!   closed form `M = Σ̃^{-1/2}` (Qi & Davidson 2009, slides 54–55);
//! * [`cui`] — iterated PCA-on-means **orthogonal projections**
//!   `M = I − A(AᵀA)⁻¹Aᵀ`, producing a whole sequence of clusterings
//!   (Cui et al. 2007, slides 57–60).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cui;
pub mod metric_flip;
pub mod qi_davidson;

pub use cui::OrthogonalProjectionClustering;
pub use metric_flip::MetricFlip;
pub use qi_davidson::QiDavidson;
