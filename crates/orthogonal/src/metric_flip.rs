//! Alternative clustering by inverting a learned metric's stretcher
//! (Davidson & Qi 2008) — slides 50–52.
//!
//! 1. The given clustering poses instance constraints (must-link within
//!    clusters, cannot-link across). Any metric learner may consume them;
//!    here we learn the within-cluster whitening metric
//!    `D = (S_w + εI)^{-1/2}` — under `D`, the given clusters become
//!    compact and spherical, i.e. "easily observable" (slide 50).
//! 2. SVD decomposes `D = H·S·A` — informally *rotate · stretch · rotate*.
//! 3. The **alternative** transformation inverts the stretcher:
//!    `M = H·S⁻¹·A`. Directions the metric stretched to reveal the given
//!    clustering are compressed, and vice versa; clustering `{M·x}`
//!    surfaces an alternative grouping.
//!
//! Slide 51's worked 2×2 example (`D = [[1.5,−1],[−1,1]]`,
//! `M = [[2,2],[2,3]]`) is reproduced digit-for-digit in the tests of
//! `multiclust_linalg::svd` and exercised end-to-end in experiment E6.

use multiclust_core::measures::quality::centroids;
use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::eigen::inv_sqrtm;
use multiclust_linalg::{Matrix, Svd};
use rand::rngs::StdRng;

use multiclust_base::Clusterer;

/// Davidson & Qi's metric-flip alternative clustering.
#[derive(Clone, Copy, Debug)]
pub struct MetricFlip {
    /// Ridge added to the within-cluster scatter before inversion.
    epsilon: f64,
    /// Floor (relative to the largest singular value) applied when
    /// inverting the stretcher.
    floor: f64,
}

/// Output of a metric-flip run.
#[derive(Clone, Debug)]
pub struct MetricFlipResult {
    /// The alternative clustering of the transformed data.
    pub clustering: Clustering,
    /// The learned metric `D`.
    pub metric: Matrix,
    /// The stretcher-inverted transformation `M`.
    pub transform: Matrix,
}

impl Default for MetricFlip {
    fn default() -> Self {
        Self { epsilon: 1e-6, floor: 1e-8 }
    }
}

impl MetricFlip {
    /// Creates the method with default regularisation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scatter ridge `ε`.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        self.epsilon = epsilon;
        self
    }

    /// Learns the metric `D = (S_w + εI)^{-1/2}` from the given clustering:
    /// the within-cluster scatter is whitened, so under `D` the given
    /// clusters are maximally compact.
    pub fn learn_metric(&self, data: &Dataset, given: &Clustering) -> Matrix {
        assert_eq!(data.len(), given.len(), "data/clustering size mismatch");
        let d = data.dims();
        let cents = centroids(data, given);
        let mut scatter = Matrix::zeros(d, d);
        let mut counted = 0usize;
        for (i, row) in data.rows().enumerate() {
            let Some(c) = given.assignment(i) else { continue };
            let Some(center) = &cents[c] else { continue };
            for a in 0..d {
                let da = row[a] - center[a];
                for b in a..d {
                    scatter[(a, b)] += da * (row[b] - center[b]);
                }
            }
            counted += 1;
        }
        let n = counted.max(1) as f64;
        for a in 0..d {
            for b in a..d {
                let v = scatter[(a, b)] / n;
                scatter[(a, b)] = v;
                scatter[(b, a)] = v;
            }
            scatter[(a, a)] += self.epsilon;
        }
        inv_sqrtm(&scatter, self.epsilon)
    }

    /// Inverts the stretcher of a learned metric: `D = H·S·A ⇒ M = H·S⁻¹·A`
    /// (slide 51).
    pub fn alternative_transform(&self, metric: &Matrix) -> Matrix {
        Svd::new(metric).invert_stretcher(self.floor)
    }

    /// Full pipeline: learn `D`, flip to `M`, transform the data, and run
    /// the supplied (exchangeable!) clusterer on `{M·x}`.
    pub fn fit(
        &self,
        data: &Dataset,
        given: &Clustering,
        clusterer: &dyn Clusterer,
        rng: &mut StdRng,
    ) -> MetricFlipResult {
        let metric = self.learn_metric(data, given);
        let transform = self.alternative_transform(&metric);
        let d = data.dims();
        let transformed = data.transformed(transform.as_slice(), d);
        let clustering = clusterer.cluster(&transformed, rng);
        MetricFlipResult { clustering, metric, transform }
    }

    /// Taxonomy card (slide 116 row "(Davidson & Qi, 2008)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "MetricFlip",
            reference: "Davidson & Qi 2008",
            space: SearchSpace::Transformed,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::Two,
            subspace: SubspaceAwareness::Dissimilarity,
            flexibility: Flexibility::ExchangeableDefinition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;
    use multiclust_base::KMeans;

    #[test]
    fn metric_whitens_the_given_clustering() {
        let mut rng = seeded_rng(141);
        let fb = four_blob_square(25, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let metric = MetricFlip::new().learn_metric(&fb.dataset, &given);
        // Under the horizontal split, within-cluster scatter is dominated
        // by the x-axis (both blob columns in one cluster): the metric must
        // stretch y relative to x.
        assert!(metric.is_symmetric(1e-9));
        assert!(
            metric[(1, 1)] > 2.0 * metric[(0, 0)],
            "y stretched over x: {metric:?}"
        );
    }

    #[test]
    fn flip_recovers_the_orthogonal_split() {
        let mut rng = seeded_rng(142);
        let fb = four_blob_square(25, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let vertical = Clustering::from_labels(&fb.vertical);
        let km = KMeans::new(2).with_restarts(4);
        let res = MetricFlip::new().fit(&fb.dataset, &given, &km, &mut rng);
        let ari_alt = adjusted_rand_index(&res.clustering, &vertical);
        let ari_given = adjusted_rand_index(&res.clustering, &given);
        assert!(ari_alt > 0.9, "vertical split found: {ari_alt}");
        assert!(ari_given < 0.1, "given split avoided: {ari_given}");
    }

    #[test]
    fn transform_inverts_stretch_directions() {
        let mut rng = seeded_rng(143);
        let fb = four_blob_square(25, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let mf = MetricFlip::new();
        let metric = mf.learn_metric(&fb.dataset, &given);
        let m = mf.alternative_transform(&metric);
        // The metric stretched y; the flip must stretch x instead.
        assert!(m[(0, 0)] > 2.0 * m[(1, 1)], "x stretched in the flip: {m:?}");
    }

    #[test]
    fn noise_only_given_clustering_is_handled() {
        let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let given = Clustering::from_options(vec![None, None]);
        let metric = MetricFlip::new().learn_metric(&data, &given);
        // Scatter is empty → metric reduces to the ε-regularised identity.
        assert!(metric.max_abs().is_finite());
        assert!(metric.is_symmetric(1e-12));
    }
}
