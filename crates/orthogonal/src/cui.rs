//! Iterated orthogonal subspace projections (Cui, Fern & Dy 2007) —
//! slides 57–60.
//!
//! One clustering per iteration, each in the orthogonal complement of the
//! previous structure:
//!
//! 1. Cluster the current database `DB_i` (any algorithm) and collect the
//!    cluster means `μ₁..μ_k`.
//! 2. PCA over the means finds the *explanatory subspace*
//!    `A = [φ₁..φ_p]` that captures the clustering structure
//!    (`p < k`, `p < d`).
//! 3. Project onto the orthogonal complement
//!    `M_i = I − A(AᵀA)⁻¹Aᵀ`, `DB_{i+1} = {M_i·x}` — the main factors are
//!    removed and previously weak structure is highlighted.
//!
//! The loop stops by itself when no variance is left, so the *number of
//! clusterings is determined automatically* (slide 60) — more than two
//! solutions fall out of one run.

use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::pca::{orthogonal_projector, Pca};
use multiclust_linalg::Matrix;
use rand::rngs::StdRng;

use multiclust_base::Clusterer;

/// Configuration of the orthogonal-projection iteration.
#[derive(Clone, Copy, Debug)]
pub struct OrthogonalProjectionClustering {
    /// Maximum number of clusterings to extract.
    max_views: usize,
    /// Fraction of the mean-scatter variance the explanatory subspace must
    /// capture (slide 58: "strong principle components of the means").
    variance_fraction: f64,
    /// Stop when the residual total variance of the projected data falls
    /// below this fraction of the original total variance.
    min_residual_variance: f64,
}

/// One extracted view.
#[derive(Clone, Debug)]
pub struct ProjectedView {
    /// The clustering found in this iteration's space.
    pub clustering: Clustering,
    /// Dimensionality of the explanatory subspace removed afterwards.
    pub explanatory_dims: usize,
    /// Fraction of the original total variance still present when this
    /// view was clustered.
    pub residual_variance: f64,
}

/// Result of the full iteration.
#[derive(Clone, Debug)]
pub struct OrthogonalProjectionResult {
    /// Extracted views, in discovery order.
    pub views: Vec<ProjectedView>,
    /// Cumulative projection applied before each view (`views[i]` was found
    /// on `{transforms[i]·x}`; `transforms[0]` is the identity).
    pub transforms: Vec<Matrix>,
}

impl Default for OrthogonalProjectionClustering {
    fn default() -> Self {
        Self { max_views: 4, variance_fraction: 0.9, min_residual_variance: 0.05 }
    }
}

impl OrthogonalProjectionClustering {
    /// Default configuration (up to 4 views, 90% explanatory variance,
    /// stop below 5% residual variance).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of extracted views.
    #[must_use]
    pub fn with_max_views(mut self, max_views: usize) -> Self {
        assert!(max_views >= 1, "at least one view");
        self.max_views = max_views;
        self
    }

    /// Sets the explanatory variance fraction.
    #[must_use]
    pub fn with_variance_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
        self.variance_fraction = fraction;
        self
    }

    /// Sets the residual-variance stopping threshold.
    #[must_use]
    pub fn with_min_residual_variance(mut self, fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "fraction in [0,1)");
        self.min_residual_variance = fraction;
        self
    }

    /// Runs the iteration with the supplied (exchangeable) clusterer.
    pub fn fit(
        &self,
        data: &Dataset,
        clusterer: &dyn Clusterer,
        rng: &mut StdRng,
    ) -> OrthogonalProjectionResult {
        let d = data.dims();
        let total_variance = dataset_variance(data).max(1e-300);
        let mut current = data.clone();
        let mut cumulative = Matrix::identity(d);
        let mut views = Vec::new();
        let mut transforms = Vec::new();

        for _ in 0..self.max_views {
            let residual = dataset_variance(&current) / total_variance;
            if residual < self.min_residual_variance {
                break;
            }
            transforms.push(cumulative.clone());
            let clustering = clusterer.cluster(&current, rng);

            // Explanatory subspace: PCA on the cluster means.
            let members = clustering.members();
            let means: Vec<Vec<f64>> = members
                .iter()
                .filter(|m| !m.is_empty())
                .map(|m| {
                    let mut mean = vec![0.0; d];
                    for &i in m {
                        for (s, &x) in mean.iter_mut().zip(current.row(i)) {
                            *s += x;
                        }
                    }
                    for s in &mut mean {
                        *s /= m.len() as f64;
                    }
                    mean
                })
                .collect();
            if means.len() < 2 {
                views.push(ProjectedView {
                    clustering,
                    explanatory_dims: 0,
                    residual_variance: residual,
                });
                break; // nothing to orthogonalise against
            }
            let refs: Vec<&[f64]> = means.iter().map(|m| m.as_slice()).collect();
            let pca = Pca::fit(&refs);
            // p < k and p < d (slide 58); at least one component.
            let p = pca
                .components_for_variance(self.variance_fraction)
                .clamp(1, (means.len() - 1).min(d.saturating_sub(1)).max(1));
            views.push(ProjectedView {
                clustering,
                explanatory_dims: p,
                residual_variance: residual,
            });
            if p >= d {
                break; // projector would annihilate everything
            }
            let a = pca.components(p);
            let projector = orthogonal_projector(&a);
            current = current.transformed(projector.as_slice(), d);
            cumulative = projector.matmul(&cumulative);
        }

        OrthogonalProjectionResult { views, transforms }
    }

    /// Taxonomy card (slide 116 row "(Cui et al., 2007)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "OrthogonalProjections",
            reference: "Cui et al. 2007",
            space: SearchSpace::Transformed,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::AtLeastTwo,
            subspace: SubspaceAwareness::Dissimilarity,
            flexibility: Flexibility::ExchangeableDefinition,
        }
    }
}

/// Total variance (trace of the covariance matrix) of a dataset.
fn dataset_variance(data: &Dataset) -> f64 {
    let mean = data.mean();
    let n = data.len().max(1) as f64;
    data.rows()
        .map(|row| {
            row.iter()
                .zip(&mean)
                .map(|(x, m)| (x - m) * (x - m))
                .sum::<f64>()
        })
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::{planted_views, ViewSpec};
    use multiclust_data::seeded_rng;
    use multiclust_base::KMeans;

    #[test]
    fn extracts_both_planted_views_in_sequence() {
        let mut rng = seeded_rng(161);
        // Two orthogonal 2-d views with very different separations, so the
        // first clustering locks onto the dominant one.
        let specs = [
            ViewSpec { dims: 2, clusters: 2, separation: 30.0, noise: 0.8 },
            ViewSpec { dims: 2, clusters: 2, separation: 10.0, noise: 0.8 },
        ];
        let planted = planted_views(200, &specs, 0, &mut rng);
        let km = KMeans::new(2).with_restarts(4);
        let res = OrthogonalProjectionClustering::new()
            .with_max_views(3)
            .fit(&planted.dataset, &km, &mut rng);
        assert!(res.views.len() >= 2, "found {} views", res.views.len());

        let truth0 = Clustering::from_labels(&planted.truths[0]);
        let truth1 = Clustering::from_labels(&planted.truths[1]);
        let ari_first = adjusted_rand_index(&res.views[0].clustering, &truth0);
        let ari_second = adjusted_rand_index(&res.views[1].clustering, &truth1);
        assert!(ari_first > 0.9, "dominant view first: {ari_first}");
        assert!(ari_second > 0.9, "orthogonalised view second: {ari_second}");
        // And the two solutions disagree with each other.
        let cross = adjusted_rand_index(&res.views[0].clustering, &res.views[1].clustering);
        assert!(cross < 0.2, "views are alternatives: {cross}");
    }

    #[test]
    fn residual_variance_decreases_monotonically() {
        let mut rng = seeded_rng(162);
        let specs = [
            ViewSpec { dims: 2, clusters: 3, separation: 20.0, noise: 1.0 },
            ViewSpec { dims: 2, clusters: 2, separation: 12.0, noise: 1.0 },
        ];
        let planted = planted_views(150, &specs, 0, &mut rng);
        let km = KMeans::new(3);
        let res = OrthogonalProjectionClustering::new()
            .with_max_views(4)
            .fit(&planted.dataset, &km, &mut rng);
        for w in res.views.windows(2) {
            assert!(
                w[1].residual_variance <= w[0].residual_variance + 1e-9,
                "projection removes variance"
            );
        }
        assert!((res.views[0].residual_variance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stops_when_variance_exhausted() {
        let mut rng = seeded_rng(163);
        // One 2-d view only: after removing it, almost nothing remains.
        let specs = [ViewSpec { dims: 2, clusters: 2, separation: 25.0, noise: 0.5 }];
        let planted = planted_views(100, &specs, 0, &mut rng);
        let km = KMeans::new(2);
        let res = OrthogonalProjectionClustering::new()
            .with_max_views(10)
            .fit(&planted.dataset, &km, &mut rng);
        assert!(
            res.views.len() < 10,
            "auto-determined view count: {}",
            res.views.len()
        );
    }


    /// The space-level check of slide 24: the explanatory subspaces removed
    /// in successive iterations are mutually orthogonal (principal angles
    /// = π/2), because each lives in the previous iteration's null space.
    #[test]
    fn successive_explanatory_spaces_are_orthogonal() {
        use multiclust_linalg::svd::principal_angles;
        let mut rng = seeded_rng(165);
        let specs = [
            ViewSpec { dims: 2, clusters: 2, separation: 30.0, noise: 0.8 },
            ViewSpec { dims: 2, clusters: 2, separation: 12.0, noise: 0.8 },
        ];
        let planted = planted_views(150, &specs, 0, &mut rng);
        let km = KMeans::new(2).with_restarts(4);
        let res = OrthogonalProjectionClustering::new()
            .with_max_views(3)
            .fit(&planted.dataset, &km, &mut rng);
        assert!(res.views.len() >= 2);
        // Reconstruct each iteration's removed direction as the range of
        // (cumulative_before − cumulative_after) — rank-p difference.
        let mut removed: Vec<Matrix> = Vec::new();
        for w in res.transforms.windows(2) {
            let diff = &w[0] - &w[1];
            removed.push(diff);
        }
        if removed.len() >= 2 {
            let angles = principal_angles(&removed[0], &removed[1]);
            for a in angles {
                assert!(
                    a > std::f64::consts::FRAC_PI_2 - 1e-6,
                    "removed spaces are orthogonal: {a}"
                );
            }
        }
    }

    #[test]
    fn transforms_align_with_views() {
        let mut rng = seeded_rng(164);
        let specs = [
            ViewSpec { dims: 2, clusters: 2, separation: 20.0, noise: 1.0 },
            ViewSpec { dims: 2, clusters: 2, separation: 10.0, noise: 1.0 },
        ];
        let planted = planted_views(80, &specs, 0, &mut rng);
        let km = KMeans::new(2);
        let res = OrthogonalProjectionClustering::new().fit(&planted.dataset, &km, &mut rng);
        assert_eq!(res.views.len(), res.transforms.len());
        // First transform is the identity.
        assert!(res.transforms[0].approx_eq(&Matrix::identity(4), 0.0));
    }
}
