//! The constrained-optimisation transformation of Qi & Davidson (2009) —
//! slides 54–55.
//!
//! Find a transformation that preserves the data's characteristics (small
//! KL divergence between original and transformed distributions) subject to
//! the constraint that objects move *away from the means of the clusters
//! they did not belong to* — large Mahalanobis distance
//! `‖x_i − m_j‖_B for x_i ∉ C_j` would recreate the old structure, so the
//! constraint bounds the distance to those foreign means, forcing novel
//! groupings. The optimal solution is the closed form
//!
//! ```text
//! M = Σ̃^{-1/2},   Σ̃ = (1/n) Σ_i Σ_{j : x_i ∉ C_j} (x_i − m_j)(x_i − m_j)ᵀ
//! ```

use multiclust_core::measures::quality::centroids;
use multiclust_core::taxonomy::{
    AlgorithmCard, Flexibility, GivenKnowledge, Processing, SearchSpace, Solutions,
    SubspaceAwareness,
};
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::eigen::inv_sqrtm;
use multiclust_linalg::vector::dist;
use multiclust_linalg::Matrix;
use rand::rngs::StdRng;

use multiclust_base::Clusterer;

/// Qi & Davidson's closed-form alternative transformation.
#[derive(Clone, Copy, Debug)]
pub struct QiDavidson {
    /// Eigenvalue floor used when inverting `Σ̃` (regularisation).
    floor: f64,
}

/// Output of a Qi–Davidson run.
#[derive(Clone, Debug)]
pub struct QiDavidsonResult {
    /// The alternative clustering of the transformed data.
    pub clustering: Clustering,
    /// The transformation `M = Σ̃^{-1/2}`.
    pub transform: Matrix,
    /// Mean distance of objects to the means of their *foreign* clusters,
    /// before the transformation.
    pub foreign_mean_distance_before: f64,
    /// The same statistic measured in the transformed space — the
    /// constraint drives it towards a bounded, uniform value, washing out
    /// the old structure.
    pub foreign_mean_distance_after: f64,
}

impl Default for QiDavidson {
    fn default() -> Self {
        Self { floor: 1e-8 }
    }
}

impl QiDavidson {
    /// Creates the method with default regularisation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes `Σ̃` — the scatter of objects around the means of clusters
    /// they do **not** belong to.
    pub fn foreign_scatter(&self, data: &Dataset, given: &Clustering) -> Matrix {
        assert_eq!(data.len(), given.len(), "data/clustering size mismatch");
        let d = data.dims();
        let cents = centroids(data, given);
        let mut sigma = Matrix::zeros(d, d);
        let n = data.len().max(1) as f64;
        for (i, row) in data.rows().enumerate() {
            for (j, cent) in cents.iter().enumerate() {
                if given.assignment(i) == Some(j) {
                    continue;
                }
                let Some(center) = cent else { continue };
                for a in 0..d {
                    let da = row[a] - center[a];
                    for b in a..d {
                        sigma[(a, b)] += da * (row[b] - center[b]);
                    }
                }
            }
        }
        for a in 0..d {
            for b in a..d {
                let v = sigma[(a, b)] / n;
                sigma[(a, b)] = v;
                sigma[(b, a)] = v;
            }
        }
        sigma
    }

    /// The closed-form transformation `M = Σ̃^{-1/2}` (slide 55).
    pub fn transform(&self, data: &Dataset, given: &Clustering) -> Matrix {
        let sigma = self.foreign_scatter(data, given);
        let scale = sigma.max_abs().max(1.0);
        inv_sqrtm(&sigma, self.floor * scale)
    }

    /// Full pipeline: transform and re-cluster with any clusterer.
    pub fn fit(
        &self,
        data: &Dataset,
        given: &Clustering,
        clusterer: &dyn Clusterer,
        rng: &mut StdRng,
    ) -> QiDavidsonResult {
        let _span = multiclust_telemetry::span("qidavidson.fit");
        let m = self.transform(data, given);
        let d = data.dims();
        let transformed = data.transformed(m.as_slice(), d);
        let clustering = clusterer.cluster(&transformed, rng);
        let before = foreign_mean_distance(data, given);
        let after = foreign_mean_distance(&transformed, given);
        // Objective trace: the constraint drives the foreign-mean distance
        // down; both sides of the transformation are already computed.
        multiclust_telemetry::event(
            "qidavidson.objective",
            &[("foreign_before", before), ("foreign_after", after)],
        );
        QiDavidsonResult {
            clustering,
            transform: m,
            foreign_mean_distance_before: before,
            foreign_mean_distance_after: after,
        }
    }

    /// Taxonomy card (slide 116 row "(Qi & Davidson, 2009)").
    pub fn card() -> AlgorithmCard {
        AlgorithmCard {
            name: "QiDavidson",
            reference: "Qi & Davidson 2009",
            space: SearchSpace::Transformed,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::Two,
            subspace: SubspaceAwareness::Dissimilarity,
            flexibility: Flexibility::ExchangeableDefinition,
        }
    }
}

/// Mean Euclidean distance of each object to the means of clusters it does
/// not belong to (under `given`'s member lists, means recomputed in the
/// supplied space).
pub fn foreign_mean_distance(data: &Dataset, given: &Clustering) -> f64 {
    let cents = centroids(data, given);
    let mut total = 0.0;
    let mut count = 0usize;
    for (i, row) in data.rows().enumerate() {
        for (j, cent) in cents.iter().enumerate() {
            if given.assignment(i) == Some(j) {
                continue;
            }
            if let Some(center) = cent {
                total += dist(row, center);
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::four_blob_square;
    use multiclust_data::seeded_rng;
    use multiclust_base::KMeans;

    #[test]
    fn closed_form_finds_alternative_split() {
        let mut rng = seeded_rng(151);
        let fb = four_blob_square(25, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let vertical = Clustering::from_labels(&fb.vertical);
        let km = KMeans::new(2).with_restarts(4);
        let res = QiDavidson::new().fit(&fb.dataset, &given, &km, &mut rng);
        let ari_alt = adjusted_rand_index(&res.clustering, &vertical);
        let ari_given = adjusted_rand_index(&res.clustering, &given);
        assert!(ari_alt > 0.9, "vertical split found: {ari_alt}");
        assert!(ari_given < 0.1, "given split avoided: {ari_given}");
    }

    #[test]
    fn transformation_whitens_foreign_scatter() {
        let mut rng = seeded_rng(152);
        let fb = four_blob_square(20, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let qd = QiDavidson::new();
        let sigma = qd.foreign_scatter(&fb.dataset, &given);
        let m = qd.transform(&fb.dataset, &given);
        // M Σ̃ M = I by construction.
        let i = m.matmul(&sigma).matmul(&m);
        assert!(i.approx_eq(&Matrix::identity(2), 1e-6), "{i:?}");
    }

    #[test]
    fn foreign_distance_statistics_reported() {
        let mut rng = seeded_rng(153);
        let fb = four_blob_square(20, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&fb.horizontal);
        let km = KMeans::new(2);
        let res = QiDavidson::new().fit(&fb.dataset, &given, &km, &mut rng);
        assert!(res.foreign_mean_distance_before > 0.0);
        assert!(res.foreign_mean_distance_after > 0.0);
        // After whitening the foreign scatter, distances to foreign means
        // sit near the unit sphere (dimension-normalised): √d ≈ 1.41.
        assert!(
            res.foreign_mean_distance_after < res.foreign_mean_distance_before,
            "transformed space bounds foreign-mean distances"
        );
    }

    #[test]
    fn single_cluster_given_degenerates_gracefully() {
        // Every object belongs to the only cluster ⇒ Σ̃ = 0 ⇒ the floor
        // keeps M finite.
        let mut rng = seeded_rng(154);
        let fb = four_blob_square(10, 10.0, 0.6, &mut rng);
        let given = Clustering::from_labels(&vec![0usize; fb.dataset.len()]);
        let m = QiDavidson::new().transform(&fb.dataset, &given);
        assert!(m.max_abs().is_finite());
    }
}
