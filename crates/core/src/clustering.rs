//! Hard and soft clustering representations.

use serde::{Deserialize, Serialize};

/// A hard clustering of `n` objects into `k` clusters, with optional noise.
///
/// `assignments[i]` is `Some(c)` when object `i` belongs to cluster
/// `c < k`, or `None` for noise/unassigned objects (density-based methods
/// such as DBSCAN and SUBCLU produce these).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    assignments: Vec<Option<usize>>,
    k: usize,
}

impl Clustering {
    /// Builds a clustering from dense labels `0..k` (no noise).
    ///
    /// ```
    /// use multiclust_core::Clustering;
    /// let c = Clustering::from_labels(&[0, 0, 1, 2]);
    /// assert_eq!(c.num_clusters(), 3);
    /// assert!(c.same_cluster(0, 1));
    /// assert!(!c.same_cluster(0, 2));
    /// ```
    pub fn from_labels(labels: &[usize]) -> Self {
        let k = labels.iter().copied().max().map_or(0, |m| m + 1);
        Self { assignments: labels.iter().map(|&l| Some(l)).collect(), k }
    }

    /// Builds a clustering from optional labels (`None` = noise).
    pub fn from_options(assignments: Vec<Option<usize>>) -> Self {
        let k = assignments
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        Self { assignments, k }
    }

    /// Builds a clustering from explicit member lists. Objects not listed in
    /// any cluster become noise.
    ///
    /// # Panics
    /// Panics if an object appears in two clusters or an index is `≥ n`.
    pub fn from_members(n: usize, clusters: &[Vec<usize>]) -> Self {
        let mut assignments = vec![None; n];
        for (c, members) in clusters.iter().enumerate() {
            for &i in members {
                assert!(i < n, "object index out of range");
                assert!(
                    assignments[i].is_none(),
                    "object {i} assigned to two clusters"
                );
                assignments[i] = Some(c);
            }
        }
        Self { assignments, k: clusters.len() }
    }

    /// Number of objects (including noise).
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of clusters (including possibly empty label slots).
    pub fn num_clusters(&self) -> usize {
        self.k
    }

    /// Assignment of object `i` (`None` = noise).
    pub fn assignment(&self, i: usize) -> Option<usize> {
        self.assignments[i]
    }

    /// All assignments.
    pub fn assignments(&self) -> &[Option<usize>] {
        &self.assignments
    }

    /// Number of noise objects.
    pub fn num_noise(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_none()).count()
    }

    /// Member lists per cluster (possibly empty lists for unused labels).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k];
        for (i, a) in self.assignments.iter().enumerate() {
            if let Some(c) = a {
                out[*c].push(i);
            }
        }
        out
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.k];
        for a in self.assignments.iter().flatten() {
            out[*a] += 1;
        }
        out
    }

    /// `true` when objects `i` and `j` are assigned to the same cluster
    /// (noise objects are co-clustered with nothing, including each other).
    pub fn same_cluster(&self, i: usize, j: usize) -> bool {
        matches!(
            (self.assignments[i], self.assignments[j]),
            (Some(a), Some(b)) if a == b
        )
    }

    /// Canonical relabelling: clusters are renumbered by first appearance
    /// and empty label slots dropped. Two clusterings that induce the same
    /// partition compare equal after canonicalisation.
    #[must_use]
    pub fn canonicalized(&self) -> Self {
        let mut map: Vec<Option<usize>> = vec![None; self.k];
        let mut next = 0;
        let assignments = self
            .assignments
            .iter()
            .map(|a| {
                a.map(|c| {
                    *map[c].get_or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    })
                })
            })
            .collect();
        Self { assignments, k: next }
    }

    /// Restricts the clustering to a subset of objects, renumbering objects
    /// to `0..subset.len()` (labels are kept as-is).
    #[must_use]
    pub fn restricted(&self, subset: &[usize]) -> Self {
        let assignments = subset.iter().map(|&i| self.assignments[i]).collect();
        Self { assignments, k: self.k }
    }
}

/// A soft (probabilistic) clustering: `resp[i][c]` is the responsibility of
/// cluster `c` for object `i`, each row summing to 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SoftClustering {
    resp: Vec<Vec<f64>>,
    k: usize,
}

impl SoftClustering {
    /// Builds from a responsibility matrix.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or a row does not sum to
    /// (approximately) one.
    pub fn new(resp: Vec<Vec<f64>>) -> Self {
        assert!(!resp.is_empty(), "at least one object required");
        let k = resp[0].len();
        for (i, row) in resp.iter().enumerate() {
            assert_eq!(row.len(), k, "row {i} has wrong length");
            let s: f64 = row.iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-6,
                "row {i} responsibilities sum to {s}, expected 1"
            );
        }
        Self { resp, k }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.resp.len()
    }

    /// `true` when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.resp.is_empty()
    }

    /// Number of mixture components.
    pub fn num_clusters(&self) -> usize {
        self.k
    }

    /// Responsibilities of object `i`.
    pub fn responsibilities(&self, i: usize) -> &[f64] {
        &self.resp[i]
    }

    /// Hardens to a [`Clustering`] by maximum responsibility.
    pub fn to_hard(&self) -> Clustering {
        let labels: Vec<usize> = self
            .resp
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect();
        // Preserve k even if some components won no object.
        Clustering {
            assignments: labels.into_iter().map(Some).collect(),
            k: self.k,
        }
    }

    /// Probability that objects `i` and `j` fall in the same cluster under
    /// this model: `Σ_l P(l|i) · P(l|j)` — the co-association statistic of
    /// Fern & Brodley (2003), slide 110.
    pub fn same_cluster_probability(&self, i: usize, j: usize) -> f64 {
        self.resp[i]
            .iter()
            .zip(&self.resp[j])
            .map(|(a, b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_counts_clusters() {
        let c = Clustering::from_labels(&[0, 1, 1, 2]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.sizes(), vec![1, 2, 1]);
        assert_eq!(c.num_noise(), 0);
    }

    #[test]
    fn noise_handling() {
        let c = Clustering::from_options(vec![Some(0), None, Some(0), None]);
        assert_eq!(c.num_noise(), 2);
        assert!(!c.same_cluster(0, 1), "noise co-clusters with nothing");
        assert!(!c.same_cluster(1, 3), "two noise objects are not co-clustered");
        assert!(c.same_cluster(0, 2));
    }

    #[test]
    fn from_members_roundtrip() {
        let c = Clustering::from_members(5, &[vec![0, 2], vec![1, 4]]);
        assert_eq!(c.assignment(0), Some(0));
        assert_eq!(c.assignment(3), None);
        assert_eq!(c.members(), vec![vec![0, 2], vec![1, 4]]);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn from_members_rejects_overlap() {
        let _ = Clustering::from_members(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn canonicalization_merges_equivalent_labelings() {
        let a = Clustering::from_labels(&[2, 2, 0, 0, 1]);
        let b = Clustering::from_labels(&[0, 0, 1, 1, 2]);
        assert_eq!(a.canonicalized(), b.canonicalized());
    }

    #[test]
    fn canonicalization_drops_empty_slots() {
        let c = Clustering::from_labels(&[0, 5]); // labels 1..5 unused
        let canon = c.canonicalized();
        assert_eq!(canon.num_clusters(), 2);
    }

    #[test]
    fn restriction_keeps_labels() {
        let c = Clustering::from_labels(&[0, 1, 2, 1]);
        let r = c.restricted(&[1, 3]);
        assert_eq!(r.len(), 2);
        assert!(r.same_cluster(0, 1));
    }

    #[test]
    fn soft_clustering_hardens_by_max() {
        let s = SoftClustering::new(vec![
            vec![0.9, 0.1],
            vec![0.2, 0.8],
            vec![0.5, 0.5],
        ]);
        let h = s.to_hard();
        assert_eq!(h.assignment(0), Some(0));
        assert_eq!(h.assignment(1), Some(1));
        assert_eq!(h.num_clusters(), 2);
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn soft_clustering_validates_rows() {
        let _ = SoftClustering::new(vec![vec![0.9, 0.3]]);
    }

    #[test]
    fn same_cluster_probability_matches_formula() {
        let s = SoftClustering::new(vec![vec![0.5, 0.5], vec![0.25, 0.75]]);
        let p = s.same_cluster_probability(0, 1);
        assert!((p - (0.5 * 0.25 + 0.5 * 0.75)).abs() < 1e-12);
        // Certainty in the same component gives probability one.
        let s2 = SoftClustering::new(vec![vec![1.0, 0.0], vec![1.0, 0.0]]);
        assert!((s2.same_cluster_probability(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Clustering::from_options(vec![Some(1), None, Some(0)]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Clustering = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
