//! Core abstractions of the `multiclust` workspace.
//!
//! This crate encodes the tutorial's abstract problem definition
//! (slide 27): given a database `DB`, find clusterings
//! `Clust₁, …, Clust_m` such that every `Q(Clust_i)` is high and every
//! pairwise `Diss(Clust_i, Clust_j)` is high. Concretely it provides
//!
//! * [`Clustering`] / [`SoftClustering`] — hard partitions with optional
//!   noise and probabilistic assignments;
//! * [`subspace::SubspaceCluster`] — the `(O, S)` cluster model of the
//!   subspace paradigm (slide 65);
//! * [`ContingencyTable`] and the *dissimilarity* measures `Diss`
//!   ([`measures::diss`]): Rand, adjusted Rand, Jaccard, mutual
//!   information, NMI, variation of information, conditional entropy;
//! * the *quality* measures `Q` ([`measures::quality`]): SSE/compactness,
//!   silhouette, plus the curse-of-dimensionality contrast statistic that
//!   motivates the subspace paradigm (slide 12);
//! * instance-level [`constraints`] (must-link / cannot-link), the vehicle
//!   COALA uses to steer away from a given clustering;
//! * [`taxonomy`] — machine-readable algorithm cards along the tutorial's
//!   classification axes, from which the taxonomy tables (slides 21/116)
//!   are regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod constraints;
pub mod contingency;
pub mod measures;
pub mod objective;
pub mod subspace;
pub mod taxonomy;

pub use clustering::{Clustering, SoftClustering};
pub use constraints::ConstraintSet;
pub use contingency::ContingencyTable;
pub use objective::MultiClusteringObjective;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::clustering::{Clustering, SoftClustering};
    pub use crate::constraints::ConstraintSet;
    pub use crate::contingency::ContingencyTable;
    pub use crate::measures::diss::{
        adjusted_rand_index, conditional_entropy, jaccard_index, mutual_information,
        normalized_mutual_information, rand_index, variation_of_information,
    };
    pub use crate::measures::quality::{silhouette, sum_of_squared_errors};
    pub use crate::subspace::{SubspaceCluster, SubspaceClustering};
    pub use crate::objective::MultiClusteringObjective;
    pub use crate::taxonomy::AlgorithmCard;
}
