//! Instance-level clustering constraints.
//!
//! COALA (Bae & Bailey 2006, slides 31–33) turns a *given* clustering into
//! cannot-link constraints — `cannot(o, p)` for every pair co-clustered in
//! the given solution — and then prefers merges that keep those constraints
//! satisfied. Metric-learning transformations (Davidson & Qi 2008) consume
//! the complementary must-link pairs. This module provides the shared
//! constraint-set machinery.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::Clustering;

/// An unordered object pair, stored normalised (`small, large`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pair(usize, usize);

impl Pair {
    /// Creates a normalised pair.
    ///
    /// # Panics
    /// Panics on a self-pair.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "constraints relate two distinct objects");
        Self(a.min(b), a.max(b))
    }

    /// The smaller index.
    pub fn first(self) -> usize {
        self.0
    }

    /// The larger index.
    pub fn second(self) -> usize {
        self.1
    }
}

/// A set of must-link and cannot-link constraints over object indices.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConstraintSet {
    must: HashSet<Pair>,
    cannot: HashSet<Pair>,
}

impl ConstraintSet {
    /// An empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a must-link constraint.
    pub fn add_must_link(&mut self, a: usize, b: usize) {
        self.must.insert(Pair::new(a, b));
    }

    /// Adds a cannot-link constraint.
    pub fn add_cannot_link(&mut self, a: usize, b: usize) {
        self.cannot.insert(Pair::new(a, b));
    }

    /// Derives COALA's constraints from a given clustering: every pair
    /// co-clustered in `given` becomes **cannot-link** (the alternative
    /// should separate them).
    pub fn cannot_links_from(given: &Clustering) -> Self {
        let mut set = Self::new();
        for members in given.members() {
            for (idx, &a) in members.iter().enumerate() {
                for &b in &members[idx + 1..] {
                    set.add_cannot_link(a, b);
                }
            }
        }
        set
    }

    /// Derives metric-learning constraints from a given clustering:
    /// co-clustered pairs are must-link, cross-cluster pairs cannot-link
    /// (the learned metric should make the given clustering easy to see,
    /// slide 50).
    pub fn from_clustering(given: &Clustering) -> Self {
        let mut set = Self::cannot_links_from(given);
        // Swap roles: what `cannot_links_from` marked cannot is must here.
        std::mem::swap(&mut set.must, &mut set.cannot);
        // Cross-cluster pairs become cannot-link.
        let members = given.members();
        for (ci, ma) in members.iter().enumerate() {
            for mb in members.iter().skip(ci + 1) {
                for &a in ma {
                    for &b in mb {
                        set.add_cannot_link(a, b);
                    }
                }
            }
        }
        set
    }

    /// Number of must-link constraints.
    pub fn num_must(&self) -> usize {
        self.must.len()
    }

    /// Number of cannot-link constraints.
    pub fn num_cannot(&self) -> usize {
        self.cannot.len()
    }

    /// `true` when `(a, b)` is must-linked.
    pub fn is_must_link(&self, a: usize, b: usize) -> bool {
        a != b && self.must.contains(&Pair::new(a, b))
    }

    /// `true` when `(a, b)` is cannot-linked.
    pub fn is_cannot_link(&self, a: usize, b: usize) -> bool {
        a != b && self.cannot.contains(&Pair::new(a, b))
    }

    /// Iterator over must-link pairs.
    pub fn must_links(&self) -> impl Iterator<Item = Pair> + '_ {
        self.must.iter().copied()
    }

    /// Iterator over cannot-link pairs.
    pub fn cannot_links(&self) -> impl Iterator<Item = Pair> + '_ {
        self.cannot.iter().copied()
    }

    /// COALA's merge admissibility (slide 32): two object sets may be
    /// *dissimilarity-merged* iff no cannot-link spans them.
    pub fn allows_merge(&self, a: &[usize], b: &[usize]) -> bool {
        // Iterate the smaller product side first for early exit.
        for &i in a {
            for &j in b {
                if self.is_cannot_link(i, j) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of constraints a clustering violates (must-link pairs split
    /// plus cannot-link pairs co-clustered).
    pub fn violations(&self, clustering: &Clustering) -> usize {
        let must_bad = self
            .must
            .iter()
            .filter(|p| !clustering.same_cluster(p.0, p.1))
            .count();
        let cannot_bad = self
            .cannot
            .iter()
            .filter(|p| clustering.same_cluster(p.0, p.1))
            .count();
        must_bad + cannot_bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_order_insensitive() {
        assert_eq!(Pair::new(3, 1), Pair::new(1, 3));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_pair_rejected() {
        let _ = Pair::new(2, 2);
    }

    #[test]
    fn cannot_links_from_clustering() {
        let given = Clustering::from_labels(&[0, 0, 1, 1, 1]);
        let cs = ConstraintSet::cannot_links_from(&given);
        // C(2,2) + C(3,2) = 1 + 3 pairs.
        assert_eq!(cs.num_cannot(), 4);
        assert!(cs.is_cannot_link(0, 1));
        assert!(cs.is_cannot_link(2, 4));
        assert!(!cs.is_cannot_link(0, 2));
        assert_eq!(cs.num_must(), 0);
    }

    #[test]
    fn metric_constraints_from_clustering() {
        let given = Clustering::from_labels(&[0, 0, 1]);
        let cs = ConstraintSet::from_clustering(&given);
        assert!(cs.is_must_link(0, 1));
        assert!(cs.is_cannot_link(0, 2));
        assert!(cs.is_cannot_link(1, 2));
        assert_eq!(cs.num_must(), 1);
        assert_eq!(cs.num_cannot(), 2);
    }

    #[test]
    fn allows_merge_blocks_spanning_cannot_link() {
        let mut cs = ConstraintSet::new();
        cs.add_cannot_link(1, 4);
        assert!(!cs.allows_merge(&[0, 1], &[4, 5]));
        assert!(cs.allows_merge(&[0, 1], &[2, 3]));
        assert!(cs.allows_merge(&[], &[4]));
    }

    #[test]
    fn violations_counts_both_kinds() {
        let mut cs = ConstraintSet::new();
        cs.add_must_link(0, 1);
        cs.add_cannot_link(2, 3);
        let good = Clustering::from_labels(&[0, 0, 1, 2]);
        assert_eq!(cs.violations(&good), 0);
        let bad = Clustering::from_labels(&[0, 1, 2, 2]);
        assert_eq!(cs.violations(&bad), 2);
    }

    #[test]
    fn noise_objects_violate_must_links() {
        let mut cs = ConstraintSet::new();
        cs.add_must_link(0, 1);
        let c = Clustering::from_options(vec![Some(0), None]);
        assert_eq!(cs.violations(&c), 1);
    }
}
