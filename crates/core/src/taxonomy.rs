//! Machine-readable taxonomy of multiple-clustering algorithms.
//!
//! Slides 20–22 and 115–122 classify every surveyed method along six axes:
//! underlying search space, processing mode, use of given knowledge, number
//! of clusterings produced, subspace/dissimilarity awareness, and
//! flexibility of the cluster definition. Every algorithm in this workspace
//! carries an [`AlgorithmCard`] with its position on those axes, and the
//! harness regenerates the slide-116 comparison table from the cards
//! (experiment T1) — the taxonomy is *data*, not prose.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The search space an approach operates in (the primary taxonomy axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchSpace {
    /// Multiple clusterings in the original data space (section 2).
    Original,
    /// Orthogonal/learned space transformations (section 3).
    Transformed,
    /// Different axis-parallel subspace projections (section 4).
    Subspaces,
    /// Multiple given views/sources (section 5).
    MultiSource,
}

/// How further solutions are computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Processing {
    /// Solutions generated independently, dissimilarity checked post hoc
    /// (meta clustering).
    Independent,
    /// One solution after another, each conditioned on the previous.
    Iterative,
    /// All solutions produced by one combined optimisation.
    Simultaneous,
    /// Not applicable (single-solution / consensus methods).
    NotApplicable,
}

/// Whether prior knowledge is consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GivenKnowledge {
    /// No clustering given.
    None,
    /// One (or more) given clustering(s) steer the search.
    GivenClustering,
}

/// How many clustering solutions the method produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Solutions {
    /// Exactly one (consensus / traditional).
    One,
    /// Exactly two (a given solution plus one alternative).
    Two,
    /// Two or more (parameterised or data-determined).
    AtLeastTwo,
}

/// Awareness of views/subspaces and their dissimilarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubspaceAwareness {
    /// Operates in one (full) space; the axis does not apply.
    NotApplicable,
    /// Finds subspaces but does not enforce their dissimilarity.
    NoDissimilarity,
    /// Enforces dissimilar subspaces/views.
    Dissimilarity,
    /// Views are supplied as input sources.
    GivenViews,
}

/// Whether the underlying cluster definition can be exchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Flexibility {
    /// The method is bound to a specific cluster definition.
    Specialized,
    /// Any clustering algorithm can be plugged in.
    ExchangeableDefinition,
}

/// One row of the taxonomy table: an algorithm and its classification.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmCard {
    /// Algorithm name as used in this workspace.
    pub name: &'static str,
    /// Literature reference in the tutorial's citation style.
    pub reference: &'static str,
    /// Primary axis: search space.
    pub space: SearchSpace,
    /// Processing mode.
    pub processing: Processing,
    /// Use of given knowledge.
    pub knowledge: GivenKnowledge,
    /// Number of solutions produced.
    pub solutions: Solutions,
    /// Subspace/view dissimilarity awareness.
    pub subspace: SubspaceAwareness,
    /// Flexibility of the cluster definition.
    pub flexibility: Flexibility,
}

impl fmt::Display for SearchSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Self::Original => "original",
            Self::Transformed => "transformed",
            Self::Subspaces => "subspaces",
            Self::MultiSource => "multi-source",
        })
    }
}

impl fmt::Display for Processing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Self::Independent => "independent",
            Self::Iterative => "iterative",
            Self::Simultaneous => "simultaneous",
            Self::NotApplicable => "-",
        })
    }
}

impl fmt::Display for GivenKnowledge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Self::None => "no",
            Self::GivenClustering => "given clustering",
        })
    }
}

impl fmt::Display for Solutions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Self::One => "m = 1",
            Self::Two => "m = 2",
            Self::AtLeastTwo => "m >= 2",
        })
    }
}

impl fmt::Display for SubspaceAwareness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Self::NotApplicable => "-",
            Self::NoDissimilarity => "no dissimilarity",
            Self::Dissimilarity => "dissimilarity",
            Self::GivenViews => "given views",
        })
    }
}

impl fmt::Display for Flexibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Self::Specialized => "specialized",
            Self::ExchangeableDefinition => "exchang. def.",
        })
    }
}

/// Renders the slide-116 comparison table from a set of cards, ordered by
/// search-space section as in the tutorial.
pub fn render_taxonomy_table(cards: &[AlgorithmCard]) -> String {
    let mut sorted: Vec<&AlgorithmCard> = cards.iter().collect();
    sorted.sort_by_key(|c| {
        (
            match c.space {
                SearchSpace::Original => 0,
                SearchSpace::Transformed => 1,
                SearchSpace::Subspaces => 2,
                SearchSpace::MultiSource => 3,
            },
            c.name,
        )
    });

    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} | {:<22} | {:<12} | {:<12} | {:<16} | {:<7} | {:<16} | {}\n",
        "algorithm", "reference", "space", "processing", "given know.", "# clust",
        "subspace detec.", "flexibility"
    ));
    out.push_str(&"-".repeat(136));
    out.push('\n');
    for c in sorted {
        out.push_str(&format!(
            "{:<22} | {:<22} | {:<12} | {:<12} | {:<16} | {:<7} | {:<16} | {}\n",
            c.name, c.reference, c.space, c.processing, c.knowledge, c.solutions,
            c.subspace, c.flexibility
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coala_card() -> AlgorithmCard {
        AlgorithmCard {
            name: "COALA",
            reference: "Bae & Bailey 2006",
            space: SearchSpace::Original,
            processing: Processing::Iterative,
            knowledge: GivenKnowledge::GivenClustering,
            solutions: Solutions::Two,
            subspace: SubspaceAwareness::NotApplicable,
            flexibility: Flexibility::Specialized,
        }
    }

    #[test]
    fn display_variants() {
        assert_eq!(SearchSpace::MultiSource.to_string(), "multi-source");
        assert_eq!(Processing::Simultaneous.to_string(), "simultaneous");
        assert_eq!(Solutions::AtLeastTwo.to_string(), "m >= 2");
        assert_eq!(Flexibility::ExchangeableDefinition.to_string(), "exchang. def.");
    }

    #[test]
    fn table_contains_rows_in_section_order() {
        let mut dec = coala_card();
        dec.name = "DecKMeans";
        dec.space = SearchSpace::Subspaces;
        let table = render_taxonomy_table(&[dec.clone(), coala_card()]);
        let coala_pos = table.find("COALA").unwrap();
        let dec_pos = table.find("DecKMeans").unwrap();
        assert!(coala_pos < dec_pos, "original-space rows precede subspace rows");
        assert!(table.contains("Bae & Bailey 2006"));
    }

    #[test]
    fn serde_roundtrip() {
        let card = coala_card();
        // `AlgorithmCard` borrows static strings, so deserialisation needs
        // a 'static source; leaking is fine in a test.
        let json: &'static str =
            Box::leak(serde_json::to_string(&card).unwrap().into_boxed_str());
        let back: AlgorithmCard = serde_json::from_str(json).unwrap();
        assert_eq!(card, back);
    }
}
