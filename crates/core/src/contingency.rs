//! Contingency tables between two clusterings.
//!
//! The contingency table is the common substrate of every clustering
//! comparison measure in the tutorial (Rand family, information-theoretic
//! family) and is itself the modelling device of Hossain et al. (2010),
//! who *maximise its uniformity* to obtain disparate clusterings
//! (slide 44).

use crate::Clustering;

/// The `k₁ × k₂` contingency table of two clusterings over the same
/// objects. Only objects assigned in **both** clusterings contribute;
/// the number of excluded objects is tracked separately.
#[derive(Clone, Debug)]
pub struct ContingencyTable {
    counts: Vec<Vec<usize>>,
    row_sums: Vec<usize>,
    col_sums: Vec<usize>,
    total: usize,
    excluded: usize,
}

impl ContingencyTable {
    /// Builds the table for clusterings `a` (rows) and `b` (columns).
    ///
    /// # Panics
    /// Panics if the clusterings have different object counts.
    pub fn new(a: &Clustering, b: &Clustering) -> Self {
        assert_eq!(a.len(), b.len(), "clusterings must cover the same objects");
        let ka = a.num_clusters();
        let kb = b.num_clusters();
        let mut counts = vec![vec![0usize; kb]; ka];
        let mut excluded = 0;
        for i in 0..a.len() {
            match (a.assignment(i), b.assignment(i)) {
                (Some(ca), Some(cb)) => counts[ca][cb] += 1,
                _ => excluded += 1,
            }
        }
        let row_sums: Vec<usize> = counts.iter().map(|r| r.iter().sum()).collect();
        let col_sums: Vec<usize> = (0..kb)
            .map(|j| counts.iter().map(|r| r[j]).sum())
            .collect();
        let total = row_sums.iter().sum();
        Self { counts, row_sums, col_sums, total, excluded }
    }

    /// Cell `(i, j)`: objects in cluster `i` of `a` and cluster `j` of `b`.
    pub fn count(&self, i: usize, j: usize) -> usize {
        self.counts[i][j]
    }

    /// Row marginals (cluster sizes of `a` over the shared objects).
    pub fn row_sums(&self) -> &[usize] {
        &self.row_sums
    }

    /// Column marginals (cluster sizes of `b` over the shared objects).
    pub fn col_sums(&self) -> &[usize] {
        &self.col_sums
    }

    /// Objects counted in the table.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Objects excluded because they are noise in at least one clustering.
    pub fn excluded(&self) -> usize {
        self.excluded
    }

    /// Number of rows / columns.
    pub fn shape(&self) -> (usize, usize) {
        (self.counts.len(), self.col_sums.len())
    }

    /// Pair counts `(n11, n10, n01, n00)`:
    /// * `n11` — pairs co-clustered in both,
    /// * `n10` — pairs co-clustered in `a` only,
    /// * `n01` — pairs co-clustered in `b` only,
    /// * `n00` — pairs separated in both.
    pub fn pair_counts(&self) -> (u64, u64, u64, u64) {
        let choose2 = |x: usize| (x as u64 * (x as u64).saturating_sub(1)) / 2;
        let n11: u64 = self
            .counts
            .iter()
            .flat_map(|r| r.iter())
            .map(|&c| choose2(c))
            .sum();
        let sum_rows: u64 = self.row_sums.iter().map(|&c| choose2(c)).sum();
        let sum_cols: u64 = self.col_sums.iter().map(|&c| choose2(c)).sum();
        let all_pairs = choose2(self.total);
        let n10 = sum_rows - n11;
        let n01 = sum_cols - n11;
        let n00 = all_pairs - n11 - n10 - n01;
        (n11, n10, n01, n00)
    }

    /// Deviation of the table from the uniform distribution, measured as the
    /// total variation distance between the normalised table and the uniform
    /// table (`0` = perfectly uniform, `→1` = concentrated).
    ///
    /// Hossain et al. (2010) search for prototypes whose induced
    /// contingency table *minimises* this (maximum uniformity = maximally
    /// independent clusterings).
    pub fn uniformity_deviation(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let (ka, kb) = self.shape();
        let cells = (ka * kb) as f64;
        let uniform = 1.0 / cells;
        let n = self.total as f64;
        0.5 * self
            .counts
            .iter()
            .flat_map(|r| r.iter())
            .map(|&c| (c as f64 / n - uniform).abs())
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> (Clustering, Clustering) {
        // a: {0,1,2} {3,4,5}; b: {0,1} {2,3} {4,5}
        let a = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let b = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        (a, b)
    }

    #[test]
    fn counts_and_marginals() {
        let (a, b) = ab();
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.count(0, 0), 2);
        assert_eq!(t.count(0, 1), 1);
        assert_eq!(t.count(1, 1), 1);
        assert_eq!(t.count(1, 2), 2);
        assert_eq!(t.row_sums(), &[3, 3]);
        assert_eq!(t.col_sums(), &[2, 2, 2]);
        assert_eq!(t.total(), 6);
        assert_eq!(t.excluded(), 0);
    }

    #[test]
    fn pair_counts_sum_to_all_pairs() {
        let (a, b) = ab();
        let t = ContingencyTable::new(&a, &b);
        let (n11, n10, n01, n00) = t.pair_counts();
        assert_eq!(n11 + n10 + n01 + n00, 15); // C(6,2)
        // Hand count: pairs together in both: (0,1),(2,3)? (2,3) not in a.
        // a-pairs: (0,1),(0,2),(1,2),(3,4),(3,5),(4,5); of these b keeps
        // (0,1) and (4,5) → n11 = 2.
        assert_eq!(n11, 2);
        assert_eq!(n10, 4);
        // b-pairs: (0,1),(2,3),(4,5); (2,3) split in a → n01 = 1.
        assert_eq!(n01, 1);
        assert_eq!(n00, 8);
    }

    #[test]
    fn noise_is_excluded() {
        let a = Clustering::from_options(vec![Some(0), Some(0), None]);
        let b = Clustering::from_labels(&[0, 1, 1]);
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.total(), 2);
        assert_eq!(t.excluded(), 1);
    }

    #[test]
    fn uniformity_of_independent_vs_identical() {
        // Independent 2×2: perfectly uniform.
        let a = Clustering::from_labels(&[0, 0, 1, 1]);
        let b = Clustering::from_labels(&[0, 1, 0, 1]);
        let t = ContingencyTable::new(&a, &b);
        assert!(t.uniformity_deviation() < 1e-12);
        // Identical clusterings: diagonal table, far from uniform.
        let t2 = ContingencyTable::new(&a, &a);
        assert!(t2.uniformity_deviation() > 0.4);
    }

    #[test]
    fn empty_overlap_is_safe() {
        let a = Clustering::from_options(vec![None, None]);
        let b = Clustering::from_labels(&[0, 1]);
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.total(), 0);
        assert_eq!(t.pair_counts(), (0, 0, 0, 0));
        assert_eq!(t.uniformity_deviation(), 0.0);
    }
}
