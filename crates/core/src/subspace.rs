//! The `(O, S)` subspace cluster model (slide 65).
//!
//! A subspace cluster is a set of objects `O ⊆ DB` together with the set of
//! relevant attributes `S ⊆ DIM` in which the objects group. A subspace
//! *clustering* is a selected set `M = {(O₁,S₁), …, (O_n,S_n)}` of such
//! clusters. The selection step (`M ⊆ ALL`) is where the multiple-views
//! semantics lives, via concept groups and the `coveredSubspaces_β`
//! relation of OSCLU (slide 82).

use serde::{Deserialize, Serialize};

use crate::Clustering;

/// A subspace cluster `(O, S)`: objects `O` grouped in subspace `S`.
/// Both lists are kept sorted and deduplicated.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubspaceCluster {
    objects: Vec<usize>,
    dims: Vec<usize>,
}

impl SubspaceCluster {
    /// Creates a subspace cluster; object and dimension lists are sorted
    /// and deduplicated.
    ///
    /// # Panics
    /// Panics if either list is empty.
    pub fn new(mut objects: Vec<usize>, mut dims: Vec<usize>) -> Self {
        objects.sort_unstable();
        objects.dedup();
        dims.sort_unstable();
        dims.dedup();
        assert!(!objects.is_empty(), "a cluster needs at least one object");
        assert!(!dims.is_empty(), "a subspace needs at least one dimension");
        Self { objects, dims }
    }

    /// Member objects, sorted ascending.
    pub fn objects(&self) -> &[usize] {
        &self.objects
    }

    /// Relevant dimensions, sorted ascending.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of member objects.
    pub fn size(&self) -> usize {
        self.objects.len()
    }

    /// Subspace dimensionality `|S|`.
    pub fn dimensionality(&self) -> usize {
        self.dims.len()
    }

    /// `true` when the object is a member (binary search on the sorted
    /// list).
    pub fn contains_object(&self, o: usize) -> bool {
        self.objects.binary_search(&o).is_ok()
    }

    /// Number of objects shared with another cluster.
    pub fn object_overlap(&self, other: &Self) -> usize {
        sorted_intersection_size(&self.objects, &other.objects)
    }

    /// Number of dimensions shared with another cluster.
    pub fn dim_overlap(&self, other: &Self) -> usize {
        sorted_intersection_size(&self.dims, &other.dims)
    }
}

/// A set of subspace clusters — the result type of every subspace method.
pub type SubspaceClustering = Vec<SubspaceCluster>;

/// The `coveredSubspaces_β` relation of OSCLU (slide 82): subspace `T` is
/// covered by subspace `S` iff `|T ∩ S| ≥ β · |T|`, i.e. a high fraction of
/// `T`'s attributes already occur in `S` — the two describe *similar
/// concepts*. `β → 0` degenerates to "any shared attribute covers",
/// `β = 1` to "only sub-(multi)sets are covered".
///
/// Both slices must be sorted ascending (as produced by
/// [`SubspaceCluster::dims`]).
///
/// ```
/// use multiclust_core::subspace::covers_subspace;
/// // Slide 82: {1,2,3,4} covers {1,2,3} (similar concepts)…
/// assert!(covers_subspace(&[1, 2, 3, 4], &[1, 2, 3], 0.75));
/// // …but {1,2} does not cover {3,4} (different concepts).
/// assert!(!covers_subspace(&[1, 2], &[3, 4], 0.75));
/// ```
pub fn covers_subspace(s: &[usize], t: &[usize], beta: f64) -> bool {
    assert!(beta > 0.0 && beta <= 1.0, "β must lie in (0, 1]");
    if t.is_empty() {
        return true;
    }
    let shared = sorted_intersection_size(s, t) as f64;
    shared >= beta * t.len() as f64
}

/// `true` when two clusters belong to the same *concept group*: either
/// subspace covers the other under `β` (slide 83 builds concept groups from
/// exactly this symmetric closure).
pub fn same_concept_group(a: &SubspaceCluster, b: &SubspaceCluster, beta: f64) -> bool {
    covers_subspace(a.dims(), b.dims(), beta) || covers_subspace(b.dims(), a.dims(), beta)
}

/// Converts the member lists of a hard [`Clustering`] in a fixed subspace
/// into subspace clusters (noise objects are skipped, empty clusters
/// dropped).
pub fn from_clustering(clustering: &Clustering, dims: &[usize]) -> SubspaceClustering {
    clustering
        .members()
        .into_iter()
        .filter(|m| !m.is_empty())
        .map(|m| SubspaceCluster::new(m, dims.to_vec()))
        .collect()
}

fn sorted_intersection_size(a: &[usize], b: &[usize]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let c = SubspaceCluster::new(vec![3, 1, 3, 2], vec![5, 0, 5]);
        assert_eq!(c.objects(), &[1, 2, 3]);
        assert_eq!(c.dims(), &[0, 5]);
        assert_eq!(c.size(), 3);
        assert_eq!(c.dimensionality(), 2);
    }

    #[test]
    fn overlap_counts() {
        let a = SubspaceCluster::new(vec![0, 1, 2, 3], vec![0, 1]);
        let b = SubspaceCluster::new(vec![2, 3, 4], vec![1, 2]);
        assert_eq!(a.object_overlap(&b), 2);
        assert_eq!(a.dim_overlap(&b), 1);
        assert!(a.contains_object(2));
        assert!(!a.contains_object(4));
    }

    /// Slide 82's four worked examples of `coveredSubspaces_β`, with
    /// β chosen mid-range (the slide's qualitative judgements hold for any
    /// β in (0.5, 1)).
    #[test]
    fn slide_82_covered_subspace_examples() {
        let beta = 0.75;
        // {1,2} does not cover {3,4} — different concepts.
        assert!(!covers_subspace(&[1, 2], &[3, 4], beta));
        // {1,2} does not cover {2,3,4} — different concepts.
        assert!(!covers_subspace(&[1, 2], &[2, 3, 4], beta));
        // {1,2,3,4} covers {1,2,3} — similar concepts.
        assert!(covers_subspace(&[1, 2, 3, 4], &[1, 2, 3], beta));
        // {1..9,10} covers {1..9,11} — similar concepts (9/10 shared).
        let s: Vec<usize> = (1..=10).collect();
        let mut t: Vec<usize> = (1..=9).collect();
        t.push(11);
        assert!(covers_subspace(&s, &t, beta));
    }

    #[test]
    fn beta_one_means_subset_only() {
        assert!(covers_subspace(&[1, 2, 3], &[1, 3], 1.0));
        assert!(!covers_subspace(&[1, 2, 3], &[1, 4], 1.0));
    }

    #[test]
    fn tiny_beta_means_any_shared_dim() {
        assert!(covers_subspace(&[1], &[1, 2, 3, 4, 5], 0.2));
        assert!(!covers_subspace(&[9], &[1, 2, 3, 4, 5], 0.2));
    }

    #[test]
    fn concept_groups_are_symmetric_closure() {
        let a = SubspaceCluster::new(vec![0], vec![1, 2, 3, 4]);
        let b = SubspaceCluster::new(vec![1], vec![1, 2]);
        // b's dims ⊆ a's dims: b covered by a even at β=1.
        assert!(same_concept_group(&a, &b, 1.0));
        let c = SubspaceCluster::new(vec![2], vec![7, 8]);
        assert!(!same_concept_group(&a, &c, 0.5));
    }

    #[test]
    fn from_clustering_skips_noise_and_empty() {
        let cl = Clustering::from_options(vec![Some(0), None, Some(0), Some(2)]);
        let sc = from_clustering(&cl, &[1, 3]);
        assert_eq!(sc.len(), 2);
        assert_eq!(sc[0].objects(), &[0, 2]);
        assert_eq!(sc[1].objects(), &[3]);
        assert_eq!(sc[0].dims(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "β must lie in (0, 1]")]
    fn beta_out_of_range_panics() {
        let _ = covers_subspace(&[1], &[1], 0.0);
    }
}
