//! The abstract multiple-clustering objective (slides 27–28, 39).
//!
//! The tutorial's problem statement is *parameterised*: detect clusterings
//! `Clust₁..Clust_m` such that every `Q(Clust_i)` is high and every
//! pairwise `Diss(Clust_i, Clust_j)` is high; the simultaneous methods
//! maximise the combined form `Σ_i Q(Clust_i) + Σ_{i≠j} Diss(…)`
//! (slide 39). This module makes that objective a first-class value, so a
//! *set* of solutions from any method (or mix of methods) can be scored on
//! a common scale — the "common quality assessment for multiple
//! clusterings" the tutorial lists as an open challenge (slide 123).

use multiclust_data::Dataset;

use crate::measures::diss::{adjusted_rand_index, normalized_mutual_information};
use crate::measures::quality::{silhouette, sum_of_squared_errors};
use crate::Clustering;

/// A quality function `Q : (DB, Clustering) → R`, higher = better.
pub type QualityFn = fn(&Dataset, &Clustering) -> f64;

/// A dissimilarity function `Diss : (Clustering, Clustering) → R`,
/// higher = more different.
pub type DissFn = fn(&Clustering, &Clustering) -> f64;

/// Silhouette as `Q` (already "higher is better", range `[-1, 1]`).
pub fn q_silhouette(data: &Dataset, c: &Clustering) -> f64 {
    silhouette(data, c)
}

/// Negated, size-normalised SSE as `Q` (higher is better).
pub fn q_neg_sse(data: &Dataset, c: &Clustering) -> f64 {
    let n = data.len().max(1) as f64;
    -sum_of_squared_errors(data, c) / n
}

/// `1 − ARI` as `Diss` (0 for identical partitions, ~1 for independent).
pub fn diss_one_minus_ari(a: &Clustering, b: &Clustering) -> f64 {
    1.0 - adjusted_rand_index(a, b)
}

/// `1 − NMI` as `Diss`.
pub fn diss_one_minus_nmi(a: &Clustering, b: &Clustering) -> f64 {
    1.0 - normalized_mutual_information(a, b)
}

/// The combined objective with a trade-off weight:
/// `score(M) = Σ_i Q(Clust_i) + γ · mean_{i<j} Diss(Clust_i, Clust_j)`.
#[derive(Clone, Copy)]
pub struct MultiClusteringObjective {
    /// Quality function `Q`.
    pub quality: QualityFn,
    /// Dissimilarity function `Diss`.
    pub dissimilarity: DissFn,
    /// Weight `γ` of the dissimilarity part.
    pub gamma: f64,
}

/// Scores of one evaluated solution set.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectiveScore {
    /// Per-solution quality values.
    pub qualities: Vec<f64>,
    /// Mean pairwise dissimilarity (0 when fewer than two solutions).
    pub mean_dissimilarity: f64,
    /// Minimum pairwise dissimilarity — the weakest link; a redundant
    /// pair shows up here even when the mean looks fine.
    pub min_dissimilarity: f64,
    /// The combined score `Σ Q + γ · mean Diss`.
    pub combined: f64,
}

impl Default for MultiClusteringObjective {
    fn default() -> Self {
        Self {
            quality: q_silhouette,
            dissimilarity: diss_one_minus_ari,
            gamma: 1.0,
        }
    }
}

impl MultiClusteringObjective {
    /// Default objective: silhouette quality, `1 − ARI` dissimilarity,
    /// `γ = 1`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the quality function.
    #[must_use]
    pub fn with_quality(mut self, q: QualityFn) -> Self {
        self.quality = q;
        self
    }

    /// Overrides the dissimilarity function.
    #[must_use]
    pub fn with_dissimilarity(mut self, d: DissFn) -> Self {
        self.dissimilarity = d;
        self
    }

    /// Overrides the trade-off weight.
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "γ must be non-negative");
        self.gamma = gamma;
        self
    }

    /// Evaluates a set of solutions on the dataset.
    ///
    /// # Panics
    /// Panics when `solutions` is empty or sizes mismatch.
    pub fn evaluate(&self, data: &Dataset, solutions: &[&Clustering]) -> ObjectiveScore {
        assert!(!solutions.is_empty(), "at least one solution required");
        for s in solutions {
            assert_eq!(s.len(), data.len(), "solution size mismatch");
        }
        let qualities: Vec<f64> =
            solutions.iter().map(|s| (self.quality)(data, s)).collect();
        let mut diss_sum = 0.0;
        let mut diss_min = f64::INFINITY;
        let mut pairs = 0usize;
        for i in 0..solutions.len() {
            for j in (i + 1)..solutions.len() {
                let d = (self.dissimilarity)(solutions[i], solutions[j]);
                diss_sum += d;
                diss_min = diss_min.min(d);
                pairs += 1;
            }
        }
        let mean_dissimilarity = if pairs == 0 { 0.0 } else { diss_sum / pairs as f64 };
        let min_dissimilarity = if pairs == 0 { 0.0 } else { diss_min };
        let combined = qualities.iter().sum::<f64>() + self.gamma * mean_dissimilarity;
        ObjectiveScore { qualities, mean_dissimilarity, min_dissimilarity, combined }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_data() -> (Dataset, Clustering, Clustering, Clustering) {
        // Deterministic mini four-corner layout.
        let mut rows = Vec::new();
        let mut horiz = Vec::new();
        let mut vert = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)] {
            for k in 0..5 {
                rows.push(vec![cx + 0.1 * k as f64, cy + 0.07 * k as f64]);
                horiz.push(usize::from(cy > 5.0));
                vert.push(usize::from(cx > 5.0));
            }
        }
        let diag: Vec<usize> = horiz.iter().zip(&vert).map(|(h, v)| h ^ v).collect();
        (
            Dataset::from_rows(&rows),
            Clustering::from_labels(&horiz),
            Clustering::from_labels(&vert),
            Clustering::from_labels(&diag),
        )
    }

    #[test]
    fn orthogonal_pair_beats_duplicate_pair() {
        let (data, horiz, vert, _) = square_data();
        let obj = MultiClusteringObjective::new();
        let orthogonal = obj.evaluate(&data, &[&horiz, &vert]);
        let duplicate = obj.evaluate(&data, &[&horiz, &horiz]);
        assert!(orthogonal.combined > duplicate.combined);
        assert_eq!(duplicate.mean_dissimilarity, 0.0);
        assert!(orthogonal.mean_dissimilarity > 0.9);
    }

    #[test]
    fn min_dissimilarity_flags_redundant_member() {
        let (data, horiz, vert, _) = square_data();
        // Two orthogonal solutions plus a duplicate of the first.
        let score = MultiClusteringObjective::new().evaluate(&data, &[&horiz, &vert, &horiz]);
        assert!(score.min_dissimilarity < 1e-12, "duplicate detected");
        assert!(score.mean_dissimilarity > 0.5, "mean alone hides it");
    }

    #[test]
    fn single_solution_reduces_to_traditional_quality() {
        // Slide 28: traditional clustering is the m = 1 special case with
        // dissimilarity trivially fulfilled.
        let (data, horiz, _, _) = square_data();
        let score = MultiClusteringObjective::new().evaluate(&data, &[&horiz]);
        assert_eq!(score.mean_dissimilarity, 0.0);
        assert_eq!(score.combined, score.qualities[0]);
    }

    #[test]
    fn gamma_trades_quality_against_diversity() {
        let (data, horiz, vert, diag) = square_data();
        // diag is a worse-quality partition (splits blobs) but dissimilar
        // to horiz. With γ = 0 the pair (horiz, vert) and (horiz, diag)
        // are ranked purely by quality.
        let obj0 = MultiClusteringObjective::new().with_gamma(0.0);
        let good = obj0.evaluate(&data, &[&horiz, &vert]);
        let bad = obj0.evaluate(&data, &[&horiz, &diag]);
        assert!(good.combined > bad.combined, "diag has poor silhouette");
    }

    #[test]
    fn custom_functions_are_plugged_in() {
        let (data, horiz, vert, _) = square_data();
        let obj = MultiClusteringObjective::new()
            .with_quality(q_neg_sse)
            .with_dissimilarity(diss_one_minus_nmi)
            .with_gamma(2.0);
        let score = obj.evaluate(&data, &[&horiz, &vert]);
        assert!(score.qualities.iter().all(|&q| q < 0.0), "neg-SSE is negative");
        assert!(score.mean_dissimilarity > 0.9);
    }

    #[test]
    #[should_panic(expected = "at least one solution")]
    fn empty_solution_set_rejected() {
        let (data, ..) = square_data();
        let _ = MultiClusteringObjective::new().evaluate(&data, &[]);
    }
}
