//! Cluster-level (dis)similarity — the middle level of slide 24's
//! hierarchy ("OBJECTS / CLUSTERS / SPACES").
//!
//! Pair-counting and information-theoretic measures compare *partitions*
//! wholesale; several surveyed methods instead reason about individual
//! clusters: OSCLU's concept groups compare clusters, redundancy models
//! ask whether one cluster explains another, and evaluation of multiple
//! solutions needs to know *which* cluster of solution A corresponds to
//! which cluster of solution B. This module provides those primitives.

use crate::Clustering;

/// Jaccard similarity of two object sets given as sorted member lists
/// (`|A∩B| / |A∪B|`); `0` for disjoint, `1` for identical sets.
pub fn cluster_jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// The best-match table between two clusterings: for every non-empty
/// cluster of `a`, the index and Jaccard similarity of its best-matching
/// cluster in `b`.
pub fn best_matches(a: &Clustering, b: &Clustering) -> Vec<Option<(usize, f64)>> {
    let members_a = a.members();
    let members_b = b.members();
    members_a
        .iter()
        .map(|ma| {
            if ma.is_empty() {
                return None;
            }
            members_b
                .iter()
                .enumerate()
                .filter(|(_, mb)| !mb.is_empty())
                .map(|(cb, mb)| (cb, cluster_jaccard(ma, mb)))
                .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
        })
        .collect()
}

/// Symmetric best-match F1 between clusterings: the harmonic mean of the
/// two directed average best-match Jaccard scores. `1` iff the partitions
/// coincide over their clustered objects; near `0` for unrelated ones.
/// A cluster-level companion to the pairwise measures — it tells you *how
/// well each found cluster corresponds to some reference cluster*, which
/// ARI cannot (a partition can have middling ARI with every individual
/// cluster matched poorly or one matched perfectly).
pub fn best_match_f1(a: &Clustering, b: &Clustering) -> f64 {
    let directed = |x: &Clustering, y: &Clustering| -> f64 {
        let matches = best_matches(x, y);
        let scores: Vec<f64> = matches.into_iter().flatten().map(|(_, s)| s).collect();
        if scores.is_empty() {
            return 0.0;
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    };
    let ab = directed(a, b);
    let ba = directed(b, a);
    if ab + ba == 0.0 {
        0.0
    } else {
        2.0 * ab * ba / (ab + ba)
    }
}

/// Coverage of clustering `a` by clustering `b`: the fraction of `a`'s
/// clustered objects that are also clustered (non-noise) in `b`. Useful
/// when density-based solutions with noise are compared against full
/// partitions.
pub fn coverage(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same objects");
    let mut assigned_a = 0usize;
    let mut both = 0usize;
    for i in 0..a.len() {
        if a.assignment(i).is_some() {
            assigned_a += 1;
            if b.assignment(i).is_some() {
                both += 1;
            }
        }
    }
    if assigned_a == 0 {
        1.0
    } else {
        both as f64 / assigned_a as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basic_cases() {
        assert_eq!(cluster_jaccard(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(cluster_jaccard(&[0, 1], &[2, 3]), 0.0);
        assert!((cluster_jaccard(&[0, 1, 2], &[1, 2, 3]) - 0.5).abs() < 1e-12);
        assert_eq!(cluster_jaccard(&[], &[]), 1.0);
        assert_eq!(cluster_jaccard(&[0], &[]), 0.0);
    }

    #[test]
    fn best_matches_pairs_up_identical_partitions() {
        let a = Clustering::from_labels(&[0, 0, 1, 1, 2]);
        let b = Clustering::from_labels(&[2, 2, 0, 0, 1]); // relabelled
        let matches = best_matches(&a, &b);
        assert_eq!(matches[0], Some((2, 1.0)));
        assert_eq!(matches[1], Some((0, 1.0)));
        assert_eq!(matches[2], Some((1, 1.0)));
    }

    #[test]
    fn f1_identical_and_independent() {
        let a = Clustering::from_labels(&[0, 0, 0, 0, 1, 1, 1, 1]);
        assert!((best_match_f1(&a, &a) - 1.0).abs() < 1e-12);
        let b = Clustering::from_labels(&[0, 1, 0, 1, 0, 1, 0, 1]);
        // Independent 2×2: every best match has Jaccard 2/6 = 1/3.
        assert!((best_match_f1(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_is_symmetric() {
        let a = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        let b = Clustering::from_labels(&[0, 1, 1, 0, 2, 2]);
        assert!((best_match_f1(&a, &b) - best_match_f1(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn f1_distinguishes_one_good_cluster_from_uniform_mediocrity() {
        // Reference: two clusters of 4. Candidate X matches one perfectly
        // and scrambles the other; candidate Y is mediocre everywhere.
        let reference = Clustering::from_labels(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let x = Clustering::from_labels(&[0, 0, 0, 0, 1, 2, 1, 2]);
        let y = Clustering::from_labels(&[0, 0, 1, 1, 0, 0, 1, 1]);
        assert!(best_match_f1(&reference, &x) > best_match_f1(&reference, &y));
    }

    #[test]
    fn coverage_counts_noise() {
        let a = Clustering::from_labels(&[0, 0, 1, 1]);
        let b = Clustering::from_options(vec![Some(0), None, Some(1), None]);
        assert_eq!(coverage(&a, &b), 0.5);
        assert_eq!(coverage(&b, &a), 1.0);
        let empty = Clustering::from_options(vec![None; 4]);
        assert_eq!(coverage(&empty, &a), 1.0, "vacuous coverage");
    }
}
