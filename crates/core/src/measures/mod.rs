//! Quality (`Q`) and dissimilarity (`Diss`) measures.
//!
//! The tutorial's abstract problem (slide 27) is parameterised by a quality
//! function over clusterings and a dissimilarity function over *pairs of
//! clusterings*; slide 24 further distinguishes (dis)similarity at the
//! level of objects, clusters, and spaces. This module hosts all three
//! levels:
//!
//! * [`quality`] — how good is one clustering on one dataset;
//! * [`diss`] — how different are two clusterings;
//! * [`cluster_diss`] — how do *individual clusters* correspond across
//!   clusterings (best-match tables, cluster Jaccard, coverage);
//! * [`highdim`] — the distance-concentration statistic of slide 12 that
//!   motivates looking beyond the full-dimensional space.

pub mod cluster_diss;
pub mod diss;
pub mod highdim;
pub mod quality;
