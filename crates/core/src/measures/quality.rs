//! Quality measures `Q` for a single clustering on a dataset.

use multiclust_data::Dataset;
use multiclust_linalg::kernels::SymmetricMatrix;
use multiclust_linalg::vector::{dist, sq_dist};

use crate::Clustering;

/// Cluster centroids (means); empty clusters yield `None` entries.
pub fn centroids(data: &Dataset, clustering: &Clustering) -> Vec<Option<Vec<f64>>> {
    assert_eq!(data.len(), clustering.len(), "data/clustering size mismatch");
    let d = data.dims();
    let k = clustering.num_clusters();
    let mut sums = vec![vec![0.0; d]; k];
    let mut counts = vec![0usize; k];
    for (i, row) in data.rows().enumerate() {
        if let Some(c) = clustering.assignment(i) {
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(row) {
                *s += x;
            }
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(mut s, c)| {
            if c == 0 {
                None
            } else {
                for x in &mut s {
                    *x /= c as f64;
                }
                Some(s)
            }
        })
        .collect()
}

/// Sum of squared errors to cluster centroids — the k-means objective
/// ("compactness / total distance", slide 28). Lower is better; noise
/// objects do not contribute.
pub fn sum_of_squared_errors(data: &Dataset, clustering: &Clustering) -> f64 {
    let cent = centroids(data, clustering);
    let mut sse = 0.0;
    for (i, row) in data.rows().enumerate() {
        if let Some(c) = clustering.assignment(i) {
            if let Some(center) = &cent[c] {
                sse += sq_dist(row, center);
            }
        }
    }
    sse
}

/// Mean silhouette coefficient over assigned objects, in `[-1, 1]`
/// (higher = better separated clusters). Objects in singleton clusters get
/// silhouette `0`; returns `0.0` when fewer than two non-empty clusters
/// exist (silhouette is undefined there).
pub fn silhouette(data: &Dataset, clustering: &Clustering) -> f64 {
    assert_eq!(data.len(), clustering.len(), "data/clustering size mismatch");
    let members = clustering.members();
    let non_empty = members.iter().filter(|m| !m.is_empty()).count();
    if non_empty < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, row) in data.rows().enumerate() {
        let Some(ci) = clustering.assignment(i) else { continue };
        let own = &members[ci];
        if own.len() <= 1 {
            counted += 1; // silhouette 0 contribution
            continue;
        }
        // a(i): mean distance to own cluster (excluding self).
        let a: f64 = own
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| dist(row, data.row(j)))
            .sum::<f64>()
            / (own.len() - 1) as f64;
        // b(i): min over other clusters of mean distance.
        let mut b = f64::INFINITY;
        for (c, m) in members.iter().enumerate() {
            if c == ci || m.is_empty() {
                continue;
            }
            let mean: f64 =
                m.iter().map(|&j| dist(row, data.row(j))).sum::<f64>() / m.len() as f64;
            b = b.min(mean);
        }
        let denom = a.max(b);
        total += if denom > 0.0 { (b - a) / denom } else { 0.0 };
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Average-link distance between two object sets: the mean pairwise
/// distance, the merge criterion of COALA's agglomerative steps
/// (slide 32).
pub fn average_link(data: &Dataset, a: &[usize], b: &[usize]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "average link of empty set");
    let mut s = 0.0;
    for &i in a {
        let ri = data.row(i);
        for &j in b {
            s += dist(ri, data.row(j));
        }
    }
    s / (a.len() * b.len()) as f64
}

/// [`average_link`] against a precomputed pairwise distance matrix.
///
/// The accumulation runs in the same `a`-outer / `b`-inner order over the
/// same `dist` values, so the result is bit-identical to [`average_link`]
/// when `dists` holds the Euclidean distance matrix of `data` — this is
/// what lets COALA share one matrix across its whole merge scan.
#[inline]
pub fn average_link_cached(dists: &SymmetricMatrix, a: &[usize], b: &[usize]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "average link of empty set");
    let mut s = 0.0;
    for &i in a {
        for &j in b {
            s += dists.get(i, j);
        }
    }
    s / (a.len() * b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Dataset, Clustering) {
        let data = Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![10.0, 10.0],
            vec![10.0, 11.0],
        ]);
        (data, Clustering::from_labels(&[0, 0, 1, 1]))
    }

    #[test]
    fn centroids_are_means() {
        let (data, c) = two_blobs();
        let cent = centroids(&data, &c);
        assert_eq!(cent[0].as_deref(), Some(&[0.0, 0.5][..]));
        assert_eq!(cent[1].as_deref(), Some(&[10.0, 10.5][..]));
    }

    #[test]
    fn empty_cluster_centroid_is_none() {
        let data = Dataset::from_rows(&[vec![1.0]]);
        let c = Clustering::from_options(vec![Some(1)]); // label 0 unused
        let cent = centroids(&data, &c);
        assert!(cent[0].is_none());
        assert!(cent[1].is_some());
    }

    #[test]
    fn sse_of_good_vs_bad_partition() {
        let (data, good) = two_blobs();
        let bad = Clustering::from_labels(&[0, 1, 0, 1]);
        assert!(sum_of_squared_errors(&data, &good) < sum_of_squared_errors(&data, &bad));
        // Good partition: each pair 1 apart ⇒ SSE = 2·(0.5² + 0.5²) = 1.
        assert!((sum_of_squared_errors(&data, &good) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn silhouette_prefers_true_structure() {
        let (data, good) = two_blobs();
        let bad = Clustering::from_labels(&[0, 1, 0, 1]);
        let s_good = silhouette(&data, &good);
        let s_bad = silhouette(&data, &bad);
        assert!(s_good > 0.8, "good split strongly positive: {s_good}");
        assert!(s_bad < 0.0, "bad split negative: {s_bad}");
    }

    #[test]
    fn silhouette_of_single_cluster_is_zero() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0]]);
        let c = Clustering::from_labels(&[0, 0]);
        assert_eq!(silhouette(&data, &c), 0.0);
    }

    #[test]
    fn noise_objects_do_not_contribute_to_sse() {
        let data = Dataset::from_rows(&[vec![0.0], vec![100.0], vec![1.0]]);
        let c = Clustering::from_options(vec![Some(0), None, Some(0)]);
        // Centroid of {0, 1.0} is 0.5 → SSE = 0.25 + 0.25.
        assert!((sum_of_squared_errors(&data, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_link_hand_value() {
        let data = Dataset::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]);
        let al = average_link(&data, &[0], &[1, 2]);
        assert!((al - 3.0).abs() < 1e-12);
    }
}
