//! Distance-concentration diagnostics for high-dimensional data.
//!
//! Slide 12 motivates the entire subspace paradigm with the curse of
//! dimensionality (Beyer et al. 1999):
//!
//! ```text
//! lim_{|D|→∞}  (max_p dist(o,p) − min_p dist(o,p)) / min_p dist(o,p) → 0
//! ```
//!
//! i.e. nearest and farthest neighbours become indistinguishable as
//! dimensionality grows. [`relative_contrast`] measures exactly that
//! statistic, and experiment E19 reproduces the limit curve.

use multiclust_data::Dataset;
use multiclust_linalg::vector::dist;

/// Mean relative contrast `(d_max − d_min) / d_min` over all objects,
/// where `d_max`/`d_min` are each object's farthest/nearest neighbour
/// distances. Approaches `0` for i.i.d. data as dimensionality grows.
///
/// Returns `None` when the dataset has fewer than two objects or some
/// object coincides with its nearest neighbour (`d_min = 0`).
pub fn relative_contrast(data: &Dataset) -> Option<f64> {
    let n = data.len();
    if n < 2 {
        return None;
    }
    let mut total = 0.0;
    for i in 0..n {
        let ri = data.row(i);
        let mut dmin = f64::INFINITY;
        let mut dmax = 0.0f64;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist(ri, data.row(j));
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        if dmin == 0.0 {
            return None;
        }
        total += (dmax - dmin) / dmin;
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_data::synthetic::uniform;
    use multiclust_data::seeded_rng;

    #[test]
    fn contrast_shrinks_with_dimensionality() {
        let mut rng = seeded_rng(11);
        let low = uniform(100, 2, 0.0, 1.0, &mut rng);
        let high = uniform(100, 128, 0.0, 1.0, &mut rng);
        let c_low = relative_contrast(&low).unwrap();
        let c_high = relative_contrast(&high).unwrap();
        assert!(
            c_low > 5.0 * c_high,
            "contrast must collapse: low-d {c_low}, high-d {c_high}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let single = Dataset::from_rows(&[vec![1.0, 2.0]]);
        assert!(relative_contrast(&single).is_none());
        let dup = Dataset::from_rows(&[vec![1.0], vec![1.0], vec![2.0]]);
        assert!(relative_contrast(&dup).is_none(), "zero d_min is undefined");
    }
}
