//! Dissimilarity / agreement measures between two clusterings.
//!
//! These are the `Diss : Clusterings × Clusterings → R` functions of the
//! abstract problem definition (slide 27). Pair-counting measures (Rand
//! family) and information-theoretic measures (MI family) are both
//! provided because the surveyed methods split along exactly that line:
//! COALA and meta clustering compare by Rand-style agreement, the
//! information-bottleneck and CAMI methods by mutual information.
//!
//! Conventions: agreement indices (Rand, ARI, Jaccard, NMI) are *high for
//! similar* clusterings; to use them as `Diss`, callers take `1 − index`.
//! Variation of information and conditional entropy are *high for
//! dissimilar* clusterings already.

use crate::{Clustering, ContingencyTable};

/// Rand index: fraction of object pairs on which the two clusterings agree
/// (co-clustered in both or separated in both). Range `[0, 1]`, `1` iff the
/// partitions are identical over the shared objects.
pub fn rand_index(a: &Clustering, b: &Clustering) -> f64 {
    let (n11, n10, n01, n00) = ContingencyTable::new(a, b).pair_counts();
    let total = n11 + n10 + n01 + n00;
    if total == 0 {
        return 1.0;
    }
    (n11 + n00) as f64 / total as f64
}

/// Adjusted Rand index: Rand corrected for chance agreement; `≈0` for
/// independent clusterings, `1` for identical ones, can be negative.
///
/// ```
/// use multiclust_core::Clustering;
/// use multiclust_core::measures::diss::adjusted_rand_index;
/// let a = Clustering::from_labels(&[0, 0, 1, 1]);
/// let relabeled = Clustering::from_labels(&[1, 1, 0, 0]);
/// assert_eq!(adjusted_rand_index(&a, &relabeled), 1.0); // labels don't matter
/// ```
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    let t = ContingencyTable::new(a, b);
    let n = t.total();
    if n < 2 {
        return 1.0;
    }
    let choose2 = |x: usize| (x as f64) * (x as f64 - 1.0) / 2.0;
    let (ka, kb) = t.shape();
    let mut index = 0.0;
    for i in 0..ka {
        for j in 0..kb {
            index += choose2(t.count(i, j));
        }
    }
    let sum_a: f64 = t.row_sums().iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = t.col_sums().iter().map(|&c| choose2(c)).sum();
    let all = choose2(n);
    let expected = sum_a * sum_b / all;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < f64::EPSILON {
        // Degenerate marginals (e.g. both single-cluster): identical ⇒ 1.
        return 1.0;
    }
    (index - expected) / (max - expected)
}

/// Jaccard index over co-clustered pairs: `n11 / (n11 + n10 + n01)`.
pub fn jaccard_index(a: &Clustering, b: &Clustering) -> f64 {
    let (n11, n10, n01, _) = ContingencyTable::new(a, b).pair_counts();
    let denom = n11 + n10 + n01;
    if denom == 0 {
        return 1.0;
    }
    n11 as f64 / denom as f64
}

/// Fowlkes–Mallows index: geometric mean of pairwise precision and recall.
pub fn fowlkes_mallows(a: &Clustering, b: &Clustering) -> f64 {
    let (n11, n10, n01, _) = ContingencyTable::new(a, b).pair_counts();
    if n11 + n10 == 0 || n11 + n01 == 0 {
        return if n11 == 0 { 1.0 } else { 0.0 };
    }
    let p = n11 as f64 / (n11 + n10) as f64;
    let r = n11 as f64 / (n11 + n01) as f64;
    (p * r).sqrt()
}

/// Shannon entropy (nats) of a clustering's label distribution over the
/// objects it assigns.
pub fn clustering_entropy(a: &Clustering) -> f64 {
    let sizes = a.sizes();
    let n: usize = sizes.iter().sum();
    if n == 0 {
        return 0.0;
    }
    sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n as f64;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information `I(A; B)` (nats) between the label distributions.
///
/// This is the statistic the information-bottleneck alternatives (slides
/// 35–36) and CAMI's decorrelation penalty are built on.
pub fn mutual_information(a: &Clustering, b: &Clustering) -> f64 {
    let t = ContingencyTable::new(a, b);
    let n = t.total() as f64;
    if t.total() == 0 {
        return 0.0;
    }
    let (ka, kb) = t.shape();
    let mut mi = 0.0;
    for i in 0..ka {
        let pa = t.row_sums()[i] as f64 / n;
        if pa == 0.0 {
            continue;
        }
        for j in 0..kb {
            let pij = t.count(i, j) as f64 / n;
            if pij == 0.0 {
                continue;
            }
            let pb = t.col_sums()[j] as f64 / n;
            mi += pij * (pij / (pa * pb)).ln();
        }
    }
    mi.max(0.0)
}

/// Normalised mutual information `I(A;B) / sqrt(H(A)·H(B))` in `[0, 1]`
/// (`1` for identical partitions, `0` for independent ones). The ensemble
/// consensus objective of Strehl & Ghosh (2002) maximises the average NMI
/// to the input clusterings (slide 110).
pub fn normalized_mutual_information(a: &Clustering, b: &Clustering) -> f64 {
    let ha = clustering_entropy(a);
    let hb = clustering_entropy(b);
    if ha == 0.0 && hb == 0.0 {
        return 1.0; // both trivial ⇒ identical partitions
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    (mutual_information(a, b) / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

/// Conditional entropy `H(A | B)` (nats): how much uncertainty about `A`
/// remains once `B` is known. The minCEntropy approach of Vinh & Epps
/// (2010) generates alternatives by keeping this *high* w.r.t. given
/// clusterings.
pub fn conditional_entropy(a: &Clustering, b: &Clustering) -> f64 {
    (clustering_entropy(a) - mutual_information(a, b)).max(0.0)
}

/// Variation of information `VI(A,B) = H(A|B) + H(B|A)` — a metric on the
/// space of partitions (Meilă). `0` iff identical.
pub fn variation_of_information(a: &Clustering, b: &Clustering) -> f64 {
    conditional_entropy(a, b) + conditional_entropy(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identical() -> (Clustering, Clustering) {
        let a = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        (a.clone(), a)
    }

    fn independent() -> (Clustering, Clustering) {
        // 2×2 balanced independent partitions of 8 objects.
        let a = Clustering::from_labels(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let b = Clustering::from_labels(&[0, 0, 1, 1, 0, 0, 1, 1]);
        (a, b)
    }

    #[test]
    fn identical_partitions_max_agreement() {
        let (a, b) = identical();
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        assert_eq!(jaccard_index(&a, &b), 1.0);
        assert_eq!(fowlkes_mallows(&a, &b), 1.0);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
        assert!(variation_of_information(&a, &b).abs() < 1e-12);
        assert!(conditional_entropy(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn relabeling_is_invisible() {
        let a = Clustering::from_labels(&[0, 0, 1, 1]);
        let b = Clustering::from_labels(&[1, 1, 0, 0]);
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn independent_partitions_score_low() {
        let (a, b) = independent();
        assert!(adjusted_rand_index(&a, &b).abs() < 0.2);
        assert!(mutual_information(&a, &b) < 1e-12);
        assert!(normalized_mutual_information(&a, &b) < 1e-12);
        // VI of two independent balanced 2-partitions = H(A)+H(B) = 2 ln 2.
        let vi = variation_of_information(&a, &b);
        assert!((vi - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn rand_known_value() {
        // Classic example: a = {0,0,0,1,1,1}, b = {0,0,1,1,2,2}.
        let a = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let b = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        // n11=2, n00=8 of 15 pairs → RI = 10/15.
        assert!((rand_index(&a, &b) - 10.0 / 15.0).abs() < 1e-12);
        assert!((jaccard_index(&a, &b) - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ari_can_be_negative() {
        // Anti-correlated beyond chance on small n.
        let a = Clustering::from_labels(&[0, 0, 1, 1]);
        let b = Clustering::from_labels(&[0, 1, 0, 1]);
        assert!(adjusted_rand_index(&a, &b) <= 0.0);
    }

    #[test]
    fn entropy_of_balanced_partition() {
        let a = Clustering::from_labels(&[0, 0, 1, 1]);
        assert!((clustering_entropy(&a) - std::f64::consts::LN_2).abs() < 1e-12);
        let trivial = Clustering::from_labels(&[0, 0, 0]);
        assert_eq!(clustering_entropy(&trivial), 0.0);
    }

    #[test]
    fn vi_is_symmetric_and_triangle() {
        let a = Clustering::from_labels(&[0, 0, 1, 1, 2, 2]);
        let b = Clustering::from_labels(&[0, 1, 1, 0, 2, 2]);
        let c = Clustering::from_labels(&[0, 1, 2, 0, 1, 2]);
        assert!((variation_of_information(&a, &b) - variation_of_information(&b, &a)).abs() < 1e-12);
        let ab = variation_of_information(&a, &b);
        let bc = variation_of_information(&b, &c);
        let ac = variation_of_information(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn noise_restricts_comparison() {
        let a = Clustering::from_options(vec![Some(0), Some(0), Some(1), None]);
        let b = Clustering::from_labels(&[0, 0, 1, 1]);
        // Over the three shared objects the partitions agree exactly.
        assert_eq!(rand_index(&a, &b), 1.0);
    }

    #[test]
    fn degenerate_single_cluster_pair() {
        let a = Clustering::from_labels(&[0, 0, 0]);
        let b = Clustering::from_labels(&[0, 0, 0]);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        assert_eq!(normalized_mutual_information(&a, &b), 1.0);
    }

    #[test]
    fn mi_upper_bounded_by_entropies() {
        let a = Clustering::from_labels(&[0, 0, 1, 1, 2, 2, 0, 1]);
        let b = Clustering::from_labels(&[0, 1, 1, 0, 2, 2, 2, 0]);
        let mi = mutual_information(&a, &b);
        assert!(mi <= clustering_entropy(&a) + 1e-12);
        assert!(mi <= clustering_entropy(&b) + 1e-12);
    }
}
