//! Property-based tests for clustering comparison measures.

use multiclust_core::measures::diss::{
    adjusted_rand_index, clustering_entropy, conditional_entropy, jaccard_index,
    mutual_information, normalized_mutual_information, rand_index,
    variation_of_information,
};
use multiclust_core::{Clustering, ContingencyTable};
use proptest::prelude::*;

/// Strategy: labels for `n` objects over at most `k` clusters.
fn labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..k, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indices_in_range(a in labels(24, 4), b in labels(24, 3)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let ri = rand_index(&ca, &cb);
        prop_assert!((0.0..=1.0).contains(&ri));
        let ji = jaccard_index(&ca, &cb);
        prop_assert!((0.0..=1.0).contains(&ji));
        let nmi = normalized_mutual_information(&ca, &cb);
        prop_assert!((0.0..=1.0).contains(&nmi));
        let ari = adjusted_rand_index(&ca, &cb);
        prop_assert!(ari <= 1.0 + 1e-12);
        prop_assert!(variation_of_information(&ca, &cb) >= 0.0);
    }

    #[test]
    fn measures_are_symmetric(a in labels(20, 4), b in labels(20, 4)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        prop_assert!((rand_index(&ca, &cb) - rand_index(&cb, &ca)).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&ca, &cb) - adjusted_rand_index(&cb, &ca)).abs() < 1e-12);
        prop_assert!((jaccard_index(&ca, &cb) - jaccard_index(&cb, &ca)).abs() < 1e-12);
        prop_assert!((mutual_information(&ca, &cb) - mutual_information(&cb, &ca)).abs() < 1e-10);
        prop_assert!((variation_of_information(&ca, &cb) - variation_of_information(&cb, &ca)).abs() < 1e-10);
    }

    #[test]
    fn self_comparison_is_perfect(a in labels(20, 5)) {
        let ca = Clustering::from_labels(&a);
        prop_assert_eq!(rand_index(&ca, &ca), 1.0);
        prop_assert!((adjusted_rand_index(&ca, &ca) - 1.0).abs() < 1e-12);
        prop_assert!(variation_of_information(&ca, &ca) < 1e-10);
        prop_assert!(conditional_entropy(&ca, &ca) < 1e-10);
    }

    #[test]
    fn label_permutation_invariance(a in labels(20, 3), b in labels(20, 3)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        // Permute b's labels 0→2, 1→0, 2→1.
        let perm: Vec<usize> = b.iter().map(|&l| (l + 2) % 3).collect();
        let cp = Clustering::from_labels(&perm);
        prop_assert!((rand_index(&ca, &cb) - rand_index(&ca, &cp)).abs() < 1e-12);
        prop_assert!((mutual_information(&ca, &cb) - mutual_information(&ca, &cp)).abs() < 1e-10);
    }

    #[test]
    fn label_permutation_invariance_random_bijection(
        a in labels(24, 5),
        b in labels(24, 5),
        seed in 0..u64::MAX,
    ) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        // Relabel b through a seeded random bijection of {0..k-1}; every
        // measure looks only at the partition, so nothing may move.
        let k = 5;
        let mut perm: Vec<usize> = (0..k).collect();
        let mut state = seed;
        for i in (1..k).rev() {
            // splitmix64 step for an index in 0..=i.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            perm.swap(i, ((z ^ (z >> 31)) % (i as u64 + 1)) as usize);
        }
        let relabelled: Vec<usize> = b.iter().map(|&l| perm[l]).collect();
        let cp = Clustering::from_labels(&relabelled);
        prop_assert!((rand_index(&ca, &cb) - rand_index(&ca, &cp)).abs() < 1e-12);
        prop_assert!((jaccard_index(&ca, &cb) - jaccard_index(&ca, &cp)).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(&ca, &cb) - adjusted_rand_index(&ca, &cp)).abs() < 1e-10);
        prop_assert!((normalized_mutual_information(&ca, &cb)
            - normalized_mutual_information(&ca, &cp)).abs() < 1e-10);
        prop_assert!((variation_of_information(&ca, &cb)
            - variation_of_information(&ca, &cp)).abs() < 1e-10);
    }

    #[test]
    fn bounds_hold_on_random_contingency_tables(
        a in labels(30, 6),
        b in labels(30, 4),
    ) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        for (name, v, lo, hi) in [
            ("rand", rand_index(&ca, &cb), 0.0, 1.0),
            ("jaccard", jaccard_index(&ca, &cb), 0.0, 1.0),
            ("ari", adjusted_rand_index(&ca, &cb), -1.0, 1.0),
            ("nmi", normalized_mutual_information(&ca, &cb), 0.0, 1.0),
        ] {
            prop_assert!(v.is_finite(), "{} is not finite: {}", name, v);
            prop_assert!(
                (lo - 1e-12..=hi + 1e-12).contains(&v),
                "{} = {} outside [{}, {}]", name, v, lo, hi
            );
        }
        let vi = variation_of_information(&ca, &cb);
        prop_assert!(vi.is_finite() && vi >= 0.0);
        prop_assert!(vi <= 2.0 * (30f64).ln() + 1e-10, "VI above 2·ln n: {}", vi);
    }

    #[test]
    fn vi_triangle_inequality(
        a in labels(16, 3),
        b in labels(16, 3),
        c in labels(16, 3),
    ) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let cc = Clustering::from_labels(&c);
        let ab = variation_of_information(&ca, &cb);
        let bc = variation_of_information(&cb, &cc);
        let ac = variation_of_information(&ca, &cc);
        prop_assert!(ac <= ab + bc + 1e-9, "VI violates triangle: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn mi_bounded_by_min_entropy(a in labels(24, 4), b in labels(24, 4)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let mi = mutual_information(&ca, &cb);
        prop_assert!(mi <= clustering_entropy(&ca).min(clustering_entropy(&cb)) + 1e-10);
        prop_assert!(mi >= 0.0);
    }

    #[test]
    fn contingency_pair_counts_partition_all_pairs(a in labels(24, 4), b in labels(24, 5)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let t = ContingencyTable::new(&ca, &cb);
        let (n11, n10, n01, n00) = t.pair_counts();
        let n = t.total() as u64;
        prop_assert_eq!(n11 + n10 + n01 + n00, n * (n - 1) / 2);
    }

    #[test]
    fn contingency_marginals_sum_to_total(a in labels(30, 4), b in labels(30, 4)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let t = ContingencyTable::new(&ca, &cb);
        let rows: usize = t.row_sums().iter().sum();
        let cols: usize = t.col_sums().iter().sum();
        prop_assert_eq!(rows, t.total());
        prop_assert_eq!(cols, t.total());
    }

    #[test]
    fn canonicalization_preserves_partition(a in labels(20, 6)) {
        let ca = Clustering::from_labels(&a);
        let canon = ca.canonicalized();
        prop_assert_eq!(rand_index(&ca, &canon), 1.0);
        prop_assert!(canon.num_clusters() <= ca.num_clusters());
    }
}
