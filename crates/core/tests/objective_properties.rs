//! Property-based tests for the combined objective and the cluster-level
//! correspondence measures.

use multiclust_core::measures::cluster_diss::{best_match_f1, cluster_jaccard, coverage};
use multiclust_core::objective::MultiClusteringObjective;
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use proptest::prelude::*;

fn labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..k, n)
}

fn small_dataset(n: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 2), n..=n)
        .prop_map(|rows| Dataset::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f1_bounded_and_symmetric(a in labels(20, 4), b in labels(20, 3)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let f = best_match_f1(&ca, &cb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        prop_assert!((f - best_match_f1(&cb, &ca)).abs() < 1e-12);
        prop_assert!((best_match_f1(&ca, &ca) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_jaccard_bounded_symmetric(
        a in prop::collection::btree_set(0..30usize, 0..15),
        b in prop::collection::btree_set(0..30usize, 0..15),
    ) {
        let a: Vec<usize> = a.into_iter().collect();
        let b: Vec<usize> = b.into_iter().collect();
        let j = cluster_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - cluster_jaccard(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(cluster_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn coverage_bounded(a in labels(15, 3), b in labels(15, 3)) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let c = coverage(&ca, &cb);
        prop_assert!((0.0..=1.0).contains(&c));
        // Full partitions cover each other completely.
        prop_assert_eq!(c, 1.0);
    }

    #[test]
    fn objective_gamma_scales_dissimilarity_part(
        data in small_dataset(16),
        a in labels(16, 3),
        b in labels(16, 3),
    ) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let score0 = MultiClusteringObjective::new()
            .with_gamma(0.0)
            .evaluate(&data, &[&ca, &cb]);
        let score2 = MultiClusteringObjective::new()
            .with_gamma(2.0)
            .evaluate(&data, &[&ca, &cb]);
        // Quality part identical; difference is exactly 2·meanDiss.
        let quality: f64 = score0.qualities.iter().sum();
        prop_assert!((score0.combined - quality).abs() < 1e-9);
        prop_assert!(
            (score2.combined - quality - 2.0 * score2.mean_dissimilarity).abs() < 1e-9
        );
        // Mean dissimilarity itself is gamma-independent.
        prop_assert!((score0.mean_dissimilarity - score2.mean_dissimilarity).abs() < 1e-12);
    }

    #[test]
    fn objective_min_diss_never_exceeds_mean(
        data in small_dataset(12),
        a in labels(12, 3),
        b in labels(12, 3),
        c in labels(12, 3),
    ) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        let cc = Clustering::from_labels(&c);
        let s = MultiClusteringObjective::new().evaluate(&data, &[&ca, &cb, &cc]);
        prop_assert!(s.min_dissimilarity <= s.mean_dissimilarity + 1e-12);
        prop_assert_eq!(s.qualities.len(), 3);
    }
}
