//! Cluster ensembles and consensus clustering — slides 108–110.
//!
//! When one high-dimensional source is split into many (random) lower
//! dimensional views, clustering each view yields an *ensemble* whose
//! consensus is more stable than any single run:
//!
//! * [`co_association`] / [`soft_co_association`] — pairwise same-cluster
//!   statistics, the latter being Fern & Brodley's
//!   `P^θ_{ij} = Σ_l P(l|i,θ)·P(l|j,θ)` (slide 110);
//! * [`consensus_from_association`] — average-link agglomeration of the
//!   association matrix into a final partition (the "similarity measure
//!   between partitions and reclustering of objects" instantiation);
//! * [`average_nmi`] — the shared-mutual-information consensus objective
//!   of Strehl & Ghosh (2002): the consensus shares maximal information
//!   with the ensemble members;
//! * [`RandomProjectionEnsemble`] — the full Fern & Brodley pipeline:
//!   random projections + EM per view + soft co-association + consensus.

use multiclust_core::measures::diss::normalized_mutual_information;
use multiclust_core::{Clustering, SoftClustering};
use multiclust_data::synthetic::gauss;
use multiclust_data::Dataset;
use multiclust_linalg::Matrix;
use rand::rngs::StdRng;

use multiclust_base::gmm::GaussianMixture;

/// Hard co-association matrix: `A[i][j]` = fraction of ensemble members
/// co-clustering objects `i` and `j`.
pub fn co_association(members: &[Clustering]) -> Matrix {
    assert!(!members.is_empty(), "ensemble must not be empty");
    let n = members[0].len();
    assert!(members.iter().all(|c| c.len() == n), "member size mismatch");
    let mut a = Matrix::zeros(n, n);
    for c in members {
        for i in 0..n {
            for j in (i + 1)..n {
                if c.same_cluster(i, j) {
                    a[(i, j)] += 1.0;
                    a[(j, i)] += 1.0;
                }
            }
        }
    }
    let m = members.len() as f64;
    let mut out = a.scaled(1.0 / m);
    for i in 0..n {
        out[(i, i)] = 1.0;
    }
    out
}

/// Soft co-association: mean over ensemble members of
/// `P^θ_{ij} = Σ_l P(l|i,θ)·P(l|j,θ)` (Fern & Brodley 2003, slide 110).
pub fn soft_co_association(members: &[SoftClustering]) -> Matrix {
    assert!(!members.is_empty(), "ensemble must not be empty");
    let n = members[0].len();
    assert!(members.iter().all(|c| c.len() == n), "member size mismatch");
    let mut a = Matrix::zeros(n, n);
    for c in members {
        for i in 0..n {
            for j in i..n {
                let p = c.same_cluster_probability(i, j);
                a[(i, j)] += p;
                if i != j {
                    a[(j, i)] += p;
                }
            }
        }
    }
    a.scaled(1.0 / members.len() as f64)
}

/// Average-link agglomeration of a similarity matrix into `k` clusters
/// (distance = `1 − similarity`).
pub fn consensus_from_association(assoc: &Matrix, k: usize) -> Clustering {
    assert!(assoc.is_square(), "association matrix must be square");
    let n = assoc.rows();
    assert!(k >= 1 && k <= n, "1 ≤ k ≤ n required");
    let mut groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    while groups.len() > k {
        let mut best = (0usize, 1usize, f64::NEG_INFINITY);
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let mut s = 0.0;
                for &a in &groups[i] {
                    for &b in &groups[j] {
                        s += assoc[(a, b)];
                    }
                }
                s /= (groups[i].len() * groups[j].len()) as f64;
                if s > best.2 {
                    best = (i, j, s);
                }
            }
        }
        let merged = groups.swap_remove(best.1);
        groups[best.0].extend(merged);
    }
    Clustering::from_members(n, &groups)
}

/// Average NMI of a candidate consensus to the ensemble members — the
/// objective Strehl & Ghosh's consensus functions maximise (slide 110).
pub fn average_nmi(candidate: &Clustering, members: &[Clustering]) -> f64 {
    assert!(!members.is_empty(), "ensemble must not be empty");
    members
        .iter()
        .map(|m| normalized_mutual_information(candidate, m))
        .sum::<f64>()
        / members.len() as f64
}

/// The Fern & Brodley (2003) pipeline: `runs` random Gaussian projections
/// to `target_dims`, an EM mixture per projection, soft co-association
/// aggregation, and average-link consensus.
#[derive(Clone, Copy, Debug)]
pub struct RandomProjectionEnsemble {
    /// Number of random projections (ensemble size).
    pub runs: usize,
    /// Dimensionality of each random projection.
    pub target_dims: usize,
    /// Mixture components per run.
    pub k_per_run: usize,
    /// Final consensus cluster count.
    pub k_consensus: usize,
}

/// Output of the random-projection ensemble.
#[derive(Clone, Debug)]
pub struct EnsembleResult {
    /// The consensus partition.
    pub consensus: Clustering,
    /// Each run's hard clustering (for diagnostics / the E18 comparison).
    pub members: Vec<Clustering>,
    /// The aggregated soft co-association matrix.
    pub association: Matrix,
}

impl RandomProjectionEnsemble {
    /// Creates the pipeline configuration.
    pub fn new(runs: usize, target_dims: usize, k_per_run: usize, k_consensus: usize) -> Self {
        assert!(runs >= 1 && target_dims >= 1 && k_per_run >= 1 && k_consensus >= 1);
        Self { runs, target_dims, k_per_run, k_consensus }
    }

    /// Runs the pipeline.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> EnsembleResult {
        let d = data.dims();
        let mut soft_members = Vec::with_capacity(self.runs);
        let mut members = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            // Random Gaussian projection R: target_dims × d, scaled by
            // 1/√target_dims.
            let scale = 1.0 / (self.target_dims as f64).sqrt();
            let r: Vec<f64> = (0..self.target_dims * d)
                .map(|_| scale * gauss(rng))
                .collect();
            let projected = data.transformed(&r, self.target_dims);
            let gmm = GaussianMixture::new(self.k_per_run)
                .with_max_iter(50)
                .fit(&projected, rng);
            members.push(gmm.to_hard());
            soft_members.push(gmm.soft);
        }
        let association = soft_co_association(&soft_members);
        let consensus = consensus_from_association(&association, self.k_consensus);
        EnsembleResult { consensus, members, association }
    }
}


impl RandomProjectionEnsemble {
    /// Taxonomy card (slide 116 row "(Fern & Brodley, 2003)").
    pub fn card() -> multiclust_core::taxonomy::AlgorithmCard {
        use multiclust_core::taxonomy::*;
        AlgorithmCard {
            name: "RP-Ensemble",
            reference: "Fern & Brodley 2003",
            space: SearchSpace::MultiSource,
            processing: Processing::Independent,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::One,
            subspace: SubspaceAwareness::NoDissimilarity,
            flexibility: Flexibility::ExchangeableDefinition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::{planted_views, ViewSpec};
    use multiclust_data::seeded_rng;

    #[test]
    fn co_association_of_identical_members_is_binary() {
        let c = Clustering::from_labels(&[0, 0, 1, 1]);
        let a = co_association(&[c.clone(), c]);
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(0, 2)], 0.0);
        assert_eq!(a[(2, 3)], 1.0);
        assert_eq!(a[(1, 1)], 1.0);
    }

    #[test]
    fn co_association_averages_disagreement() {
        let c1 = Clustering::from_labels(&[0, 0, 1]);
        let c2 = Clustering::from_labels(&[0, 1, 1]);
        let a = co_association(&[c1, c2]);
        assert_eq!(a[(0, 1)], 0.5);
        assert_eq!(a[(1, 2)], 0.5);
        assert_eq!(a[(0, 2)], 0.0);
    }

    #[test]
    fn soft_association_matches_formula() {
        let s = SoftClustering::new(vec![vec![0.5, 0.5], vec![0.25, 0.75]]);
        let a = soft_co_association(&[s]);
        assert!((a[(0, 1)] - (0.5 * 0.25 + 0.5 * 0.75)).abs() < 1e-12);
    }

    #[test]
    fn consensus_recovers_majority_structure() {
        // Three members: two agree on the true split, one is scrambled.
        let truth = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let noisy = Clustering::from_labels(&[0, 1, 0, 1, 0, 1]);
        let a = co_association(&[truth.clone(), truth.clone(), noisy]);
        let consensus = consensus_from_association(&a, 2);
        assert_eq!(adjusted_rand_index(&consensus, &truth), 1.0);
    }

    #[test]
    fn average_nmi_is_maximised_by_shared_structure() {
        let truth = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let members = vec![truth.clone(), truth.clone()];
        let other = Clustering::from_labels(&[0, 1, 2, 0, 1, 2]);
        assert!(average_nmi(&truth, &members) > average_nmi(&other, &members));
        assert!((average_nmi(&truth, &members) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_projection_ensemble_beats_average_member() {
        // High-dimensional data with 3 planted clusters in all dims.
        let mut rng = seeded_rng(42);
        let spec = ViewSpec { dims: 16, clusters: 3, separation: 3.0, noise: 1.0 };
        let p = planted_views(120, &[spec], 4, &mut rng);
        let truth = Clustering::from_labels(&p.truths[0]);
        let ens = RandomProjectionEnsemble::new(12, 4, 3, 3).fit(&p.dataset, &mut rng);
        let consensus_ari = adjusted_rand_index(&ens.consensus, &truth);
        let mean_member_ari: f64 = ens
            .members
            .iter()
            .map(|m| adjusted_rand_index(m, &truth))
            .sum::<f64>()
            / ens.members.len() as f64;
        assert!(
            consensus_ari >= mean_member_ari,
            "consensus ({consensus_ari}) at least as good as the mean member ({mean_member_ari})"
        );
        assert!(consensus_ari > 0.8, "consensus recovers the structure: {consensus_ari}");
    }
}
