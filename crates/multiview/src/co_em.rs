//! co-EM multi-view clustering (Bickel & Scheffer 2004) — slides 98–104.
//!
//! Two conditionally independent views of the same objects, one Gaussian
//! mixture hypothesis per view. The views *bootstrap each other*: the
//! M-step of view `v` maximises the likelihood of view `v`'s data under
//! the **posterior assignments computed in the other view** `v̄`
//! (slide 102), then the E-step refreshes view `v`'s posteriors. Agreement
//! between the hypotheses grows — and disagreement upper-bounds the error
//! of either one (slide 99).
//!
//! The tutorial's caveat (slide 104) is implemented faithfully: iterative
//! co-EM *might not terminate* (assignments can oscillate between views),
//! so the loop carries an explicit agreement-stability termination
//! criterion on top of the iteration cap.

use multiclust_core::{Clustering, SoftClustering};
use multiclust_data::MultiViewDataset;
use multiclust_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;

use multiclust_base::gmm::Component;
use multiclust_base::kmeans::plus_plus_init;

/// co-EM configuration.
#[derive(Clone, Copy, Debug)]
pub struct CoEm {
    k: usize,
    max_iter: usize,
    /// Terminate once the inter-view agreement changes by less than this
    /// between iterations (the anti-oscillation criterion of slide 104).
    agreement_tol: f64,
    reg: f64,
}

/// Result of a co-EM run.
#[derive(Clone, Debug)]
pub struct CoEmResult {
    /// Per-view soft assignments at convergence.
    pub soft: [SoftClustering; 2],
    /// The consensus clustering (hardened product of the two posteriors).
    pub consensus: Clustering,
    /// Per-view fitted components.
    pub components: [Vec<Component>; 2],
    /// Per-view log-likelihoods of the final models on their own views.
    pub log_likelihoods: [f64; 2],
    /// Inter-view agreement (mean over objects of `Σ_c r₁c·r₂c`) per
    /// iteration — the bootstrapping trace of slide 103.
    pub agreement_history: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// `true` when the loop hit the iteration cap without stabilising —
    /// the non-termination caveat surfaced to the caller.
    pub hit_iteration_cap: bool,
}

impl CoEm {
    /// co-EM with `k` mixture components per view.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self { k, max_iter: 100, agreement_tol: 1e-6, reg: 1e-4 }
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the agreement-stability tolerance.
    #[must_use]
    pub fn with_agreement_tol(mut self, tol: f64) -> Self {
        assert!(tol >= 0.0);
        self.agreement_tol = tol;
        self
    }

    /// Runs co-EM on the first two views of `mv`.
    ///
    /// # Panics
    /// Panics when `mv` has fewer than two views or fewer than `k`
    /// objects.
    pub fn fit(&self, mv: &MultiViewDataset, rng: &mut StdRng) -> CoEmResult {
        assert!(mv.num_views() >= 2, "co-EM needs two views");
        let n = mv.len();
        assert!(n >= self.k, "need at least k objects");
        let views = [mv.view(0), mv.view(1)];

        // Initialise each view's components independently (k-means++ on
        // its own view).
        let mut comps: [Vec<Component>; 2] = [
            init_components(views[0], self.k, self.reg, rng),
            init_components(views[1], self.k, self.reg, rng),
        ];
        let mut resp: [Vec<Vec<f64>>; 2] = [
            vec![vec![1.0 / self.k as f64; self.k]; n],
            vec![vec![1.0 / self.k as f64; self.k]; n],
        ];
        // Bootstrap: E-step each view against its own initialisation.
        for v in 0..2 {
            let _ = e_step(views[v], &comps[v], &mut resp[v]);
        }

        let mut agreement_history = Vec::new();
        let mut iterations = 0;
        let mut hit_iteration_cap = true;
        for _ in 0..self.max_iter {
            iterations += 1;
            // Slide 102: for v = 0, 1 —
            //   Maximisation of view v under the posteriors of view v̄,
            //   then Expectation in view v under the new parameters.
            for v in 0..2 {
                let other = 1 - v;
                let other_resp = resp[other].clone();
                m_step(views[v], &other_resp, &mut comps[v], self.reg);
                let _ = e_step(views[v], &comps[v], &mut resp[v]);
            }
            let agreement = mean_agreement(&resp[0], &resp[1]);
            let stable = agreement_history
                .last()
                .is_some_and(|&prev: &f64| (agreement - prev).abs() <= self.agreement_tol);
            agreement_history.push(agreement);
            if stable {
                hit_iteration_cap = false;
                break;
            }
        }

        let log_likelihoods = [
            e_step(views[0], &comps[0], &mut resp[0]),
            e_step(views[1], &comps[1], &mut resp[1]),
        ];
        // Consensus: product of per-view posteriors, renormalised.
        let consensus_rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let mut row: Vec<f64> = resp[0][i]
                    .iter()
                    .zip(&resp[1][i])
                    .map(|(a, b)| a * b)
                    .collect();
                let s: f64 = row.iter().sum();
                if s > 0.0 {
                    for x in &mut row {
                        *x /= s;
                    }
                } else {
                    row = vec![1.0 / self.k as f64; self.k];
                }
                row
            })
            .collect();
        let consensus = SoftClustering::new(consensus_rows).to_hard();
        let soft = [
            SoftClustering::new(normalize_rows(resp[0].clone())),
            SoftClustering::new(normalize_rows(resp[1].clone())),
        ];
        CoEmResult {
            soft,
            consensus,
            components: comps,
            log_likelihoods,
            agreement_history,
            iterations,
            hit_iteration_cap,
        }
    }
}

/// Mean over objects of the posterior inner product `Σ_c r₁[i][c]·r₂[i][c]`
/// — 1 when both views assign identically with certainty.
pub fn mean_agreement(r1: &[Vec<f64>], r2: &[Vec<f64>]) -> f64 {
    if r1.is_empty() {
        return 1.0;
    }
    let total: f64 = r1
        .iter()
        .zip(r2)
        .map(|(a, b)| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>())
        .sum();
    total / r1.len() as f64
}

/// Log-likelihood of `data` under a fitted component set (utility for the
/// slide-104 experiment: initialising single-view EM with co-EM's final
/// parameters yields a higher likelihood than single-view EM alone).
pub fn log_likelihood(data: &multiclust_data::Dataset, comps: &[Component]) -> f64 {
    let mut resp = vec![vec![0.0; comps.len()]; data.len()];
    e_step(data, comps, &mut resp)
}

/// One standard EM iteration (M-step on given responsibilities, then
/// E-step) — used to continue a co-EM solution single-view.
pub fn single_view_iteration(
    data: &multiclust_data::Dataset,
    comps: &mut [Component],
    resp: &mut [Vec<f64>],
    reg: f64,
) -> f64 {
    let snapshot = resp.to_vec();
    m_step(data, &snapshot, comps, reg);
    e_step(data, comps, resp)
}

fn init_components(
    data: &multiclust_data::Dataset,
    k: usize,
    reg: f64,
    rng: &mut StdRng,
) -> Vec<Component> {
    let means = plus_plus_init(data, k, rng);
    let cov = global_covariance(data, reg);
    means
        .into_iter()
        .map(|mean| Component { weight: 1.0 / k as f64, mean, cov: cov.clone() })
        .collect()
}

fn e_step(
    data: &multiclust_data::Dataset,
    comps: &[Component],
    resp: &mut [Vec<f64>],
) -> f64 {
    let factors: Vec<(Cholesky, f64)> = comps
        .iter()
        .map(|c| {
            let ch = Cholesky::new(&c.cov).expect("regularised covariance is SPD");
            let log_norm = -0.5
                * (c.mean.len() as f64 * (2.0 * std::f64::consts::PI).ln() + ch.log_det());
            (ch, log_norm)
        })
        .collect();
    let mut total = 0.0;
    for (i, row) in data.rows().enumerate() {
        let log_p: Vec<f64> = comps
            .iter()
            .zip(&factors)
            .map(|(c, (ch, log_norm))| {
                c.weight.max(1e-300).ln() + log_norm - 0.5 * ch.mahalanobis_sq(row, &c.mean)
            })
            .collect();
        let max = log_p.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let log_sum = max + log_p.iter().map(|&l| (l - max).exp()).sum::<f64>().ln();
        total += log_sum;
        for (r, &l) in resp[i].iter_mut().zip(&log_p) {
            *r = (l - log_sum).exp();
        }
    }
    total
}

fn m_step(
    data: &multiclust_data::Dataset,
    resp: &[Vec<f64>],
    comps: &mut [Component],
    reg: f64,
) {
    let d = data.dims();
    let n = data.len() as f64;
    for (j, comp) in comps.iter_mut().enumerate() {
        let nj: f64 = resp.iter().map(|r| r[j]).sum::<f64>().max(1e-12);
        comp.weight = nj / n;
        let mut mean = vec![0.0; d];
        for (row, r) in data.rows().zip(resp) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += r[j] * x;
            }
        }
        for m in &mut mean {
            *m /= nj;
        }
        let mut cov = Matrix::zeros(d, d);
        for (row, r) in data.rows().zip(resp) {
            let w = r[j];
            if w == 0.0 {
                continue;
            }
            for a in 0..d {
                let da = row[a] - mean[a];
                for b in a..d {
                    cov[(a, b)] += w * da * (row[b] - mean[b]);
                }
            }
        }
        for a in 0..d {
            for b in a..d {
                let v = cov[(a, b)] / nj;
                cov[(a, b)] = v;
                cov[(b, a)] = v;
            }
            cov[(a, a)] += reg;
        }
        comp.mean = mean;
        comp.cov = cov;
    }
}

fn global_covariance(data: &multiclust_data::Dataset, reg: f64) -> Matrix {
    let d = data.dims();
    let n = data.len() as f64;
    let mean = data.mean();
    let mut cov = Matrix::zeros(d, d);
    for row in data.rows() {
        for a in 0..d {
            let da = row[a] - mean[a];
            for b in a..d {
                cov[(a, b)] += da * (row[b] - mean[b]);
            }
        }
    }
    for a in 0..d {
        for b in a..d {
            let v = cov[(a, b)] / n;
            cov[(a, b)] = v;
            cov[(b, a)] = v;
        }
        cov[(a, a)] += reg;
    }
    cov
}

fn normalize_rows(mut rows: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    for row in &mut rows {
        let s: f64 = row.iter().sum();
        if s > 0.0 {
            for x in row.iter_mut() {
                *x /= s;
            }
        }
    }
    rows
}


impl CoEm {
    /// Taxonomy card (slide 116 row "(Bickel & Scheffer, 2004)").
    pub fn card() -> multiclust_core::taxonomy::AlgorithmCard {
        use multiclust_core::taxonomy::*;
        AlgorithmCard {
            name: "co-EM",
            reference: "Bickel & Scheffer 2004",
            space: SearchSpace::MultiSource,
            processing: Processing::Simultaneous,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::One,
            subspace: SubspaceAwareness::GivenViews,
            flexibility: Flexibility::Specialized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gauss;
    use multiclust_data::{seeded_rng, Dataset};
    use rand::Rng;

    /// Two views that agree on a planted 2-cluster structure, each with
    /// its own geometry.
    fn consistent_two_views(
        n: usize,
        seed: u64,
    ) -> (MultiViewDataset, Clustering) {
        let mut rng = seeded_rng(seed);
        let mut v1 = Dataset::with_dims(2);
        let mut v2 = Dataset::with_dims(3);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = usize::from(rng.gen::<bool>());
            labels.push(c);
            let base1 = if c == 0 { 0.0 } else { 8.0 };
            let base2 = if c == 0 { -5.0 } else { 5.0 };
            v1.push_row(&[base1 + gauss(&mut rng), base1 + gauss(&mut rng)]);
            v2.push_row(&[
                base2 + gauss(&mut rng),
                base2 + gauss(&mut rng),
                gauss(&mut rng),
            ]);
        }
        (
            MultiViewDataset::new(vec![v1, v2]),
            Clustering::from_labels(&labels),
        )
    }

    #[test]
    fn consensus_recovers_shared_structure() {
        let (mv, truth) = consistent_two_views(120, 221);
        let mut rng = seeded_rng(222);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..3 {
            let res = CoEm::new(2).fit(&mv, &mut rng);
            best = best.max(adjusted_rand_index(&res.consensus, &truth));
        }
        assert!(best > 0.95, "consensus ARI {best}");
    }

    #[test]
    fn agreement_grows_during_bootstrapping() {
        let (mv, _) = consistent_two_views(100, 223);
        let mut rng = seeded_rng(224);
        let res = CoEm::new(2).fit(&mv, &mut rng);
        let first = res.agreement_history.first().copied().unwrap();
        let last = res.agreement_history.last().copied().unwrap();
        assert!(
            last >= first - 1e-9,
            "agreement non-decreasing overall: {first} → {last}"
        );
        assert!(last > 0.8, "strong final agreement: {last}");
    }

    #[test]
    fn termination_criterion_fires() {
        let (mv, _) = consistent_two_views(80, 225);
        let mut rng = seeded_rng(226);
        let res = CoEm::new(2).with_max_iter(200).fit(&mv, &mut rng);
        assert!(
            !res.hit_iteration_cap,
            "agreement stabilises well before 200 iterations (ran {})",
            res.iterations
        );
        assert!(res.iterations < 200);
    }

    /// Slide 104: initialising single-view EM with co-EM's final
    /// parameters yields a higher single-view likelihood than the co-EM
    /// state itself — and the continuation never decreases it.
    #[test]
    fn single_view_continuation_improves_likelihood() {
        let (mv, _) = consistent_two_views(100, 227);
        let mut rng = seeded_rng(228);
        let res = CoEm::new(2).fit(&mv, &mut rng);
        let view0 = mv.view(0);
        let mut comps = res.components[0].clone();
        let mut resp: Vec<Vec<f64>> = (0..view0.len())
            .map(|i| res.soft[0].responsibilities(i).to_vec())
            .collect();
        let before = log_likelihood(view0, &comps);
        let mut ll = before;
        for _ in 0..20 {
            ll = single_view_iteration(view0, &mut comps, &mut resp, 1e-4);
        }
        assert!(ll >= before - 1e-6, "continuation is monotone: {before} → {ll}");
    }

    #[test]
    fn mean_agreement_bounds() {
        let certain = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!((mean_agreement(&certain, &certain) - 1.0).abs() < 1e-12);
        let opposite = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(mean_agreement(&certain, &opposite), 0.0);
        let uniform = vec![vec![0.5, 0.5]; 2];
        assert!((mean_agreement(&uniform, &uniform) - 0.5).abs() < 1e-12);
    }
}
