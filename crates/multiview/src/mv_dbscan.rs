//! Multi-represented DBSCAN (Kailing, Kriegel, Pryakhin & Schubert 2004a)
//! — slides 105–107.
//!
//! Adapts DBSCAN's core-object property to multiple views, each with its
//! own distance and `ε`:
//!
//! * **Union** (sparse views): `CORE∪(o) ⇔ |∪_v N^v_ε(o)| ≥ k`; `p` is
//!   directly reachable from core `q` when `p` lies in at least one local
//!   neighbourhood — objects are grouped when similar in *some* view.
//! * **Intersection** (unreliable views): `CORE∩(o) ⇔ |∩_v N^v_ε(o)| ≥ k`;
//!   `p` must lie in *every* local neighbourhood — purer clusters that
//!   require agreement of all views.

use multiclust_core::Clustering;
use multiclust_data::MultiViewDataset;
use multiclust_linalg::vector::sq_dist;

use multiclust_base::dbscan::expand_from_cores;

/// Which multi-view core-object semantics to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiViewMethod {
    /// Union of local neighbourhoods (slide 106) — for sparse views.
    Union,
    /// Intersection of local neighbourhoods (slide 107) — for unreliable
    /// views.
    Intersection,
}

/// Multi-view DBSCAN configuration: one `ε` per view, a global `k`
/// (`min_pts`), and the combination method.
#[derive(Clone, Debug)]
pub struct MultiViewDbscan {
    epsilons: Vec<f64>,
    k: usize,
    method: MultiViewMethod,
}

impl MultiViewDbscan {
    /// Creates the clusterer.
    ///
    /// # Panics
    /// Panics if `epsilons` is empty, non-positive, or `k == 0`.
    pub fn new(epsilons: Vec<f64>, k: usize, method: MultiViewMethod) -> Self {
        assert!(!epsilons.is_empty(), "one ε per view required");
        assert!(epsilons.iter().all(|&e| e > 0.0), "ε must be positive");
        assert!(k >= 1, "k must be at least 1");
        Self { epsilons, k, method }
    }

    /// The local neighbourhood `N^v_ε(o)` in view `v` (including `o`).
    pub fn local_neighborhood(&self, mv: &MultiViewDataset, v: usize, o: usize) -> Vec<usize> {
        let view = mv.view(v);
        let eps2 = self.epsilons[v] * self.epsilons[v];
        let ro = view.row(o);
        (0..view.len())
            .filter(|&j| sq_dist(ro, view.row(j)) <= eps2)
            .collect()
    }

    /// Runs the clustering.
    ///
    /// # Panics
    /// Panics when the number of `ε` values differs from the number of
    /// views.
    pub fn fit(&self, mv: &MultiViewDataset) -> Clustering {
        assert_eq!(
            self.epsilons.len(),
            mv.num_views(),
            "one ε per view required"
        );
        let n = mv.len();
        let views = mv.num_views();
        // Precompute local neighbourhoods (sorted object lists).
        let local: Vec<Vec<Vec<usize>>> = (0..views)
            .map(|v| (0..n).map(|o| self.local_neighborhood(mv, v, o)).collect())
            .collect();
        let combined: Vec<Vec<usize>> = (0..n)
            .map(|o| match self.method {
                MultiViewMethod::Union => {
                    let mut u: Vec<usize> =
                        local.iter().flat_map(|lv| lv[o].iter().copied()).collect();
                    u.sort_unstable();
                    u.dedup();
                    u
                }
                MultiViewMethod::Intersection => {
                    let mut acc = local[0][o].clone();
                    for lv in &local[1..] {
                        let set: std::collections::HashSet<usize> =
                            lv[o].iter().copied().collect();
                        acc.retain(|x| set.contains(x));
                    }
                    acc
                }
            })
            .collect();
        expand_from_cores(n, |o| combined[o].len() >= self.k, |o| combined[o].clone())
    }
}


impl MultiViewDbscan {
    /// Taxonomy card (slide 116 row "(Kailing et al., 2004)").
    pub fn card() -> multiclust_core::taxonomy::AlgorithmCard {
        use multiclust_core::taxonomy::*;
        AlgorithmCard {
            name: "MV-DBSCAN",
            reference: "Kailing et al. 2004a",
            space: SearchSpace::MultiSource,
            processing: Processing::Simultaneous,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::One,
            subspace: SubspaceAwareness::GivenViews,
            flexibility: Flexibility::Specialized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gauss;
    use multiclust_data::{seeded_rng, Dataset};
    use rand::Rng;

    /// `CORE∩ ⊆ CORE∪` for equal parameters — the structural relation
    /// between the two semantics.
    #[test]
    fn intersection_cores_are_union_cores() {
        let mut rng = seeded_rng(231);
        let mut v1 = Dataset::with_dims(1);
        let mut v2 = Dataset::with_dims(1);
        for _ in 0..60 {
            v1.push_row(&[gauss(&mut rng) * 3.0]);
            v2.push_row(&[gauss(&mut rng) * 3.0]);
        }
        let mv = MultiViewDataset::new(vec![v1, v2]);
        let mvd_union = MultiViewDbscan::new(vec![1.0, 1.0], 4, MultiViewMethod::Union);
        let mvd_inter =
            MultiViewDbscan::new(vec![1.0, 1.0], 4, MultiViewMethod::Intersection);
        for o in 0..60 {
            let n_union: std::collections::HashSet<usize> = (0..2)
                .flat_map(|v| mvd_union.local_neighborhood(&mv, v, o))
                .collect();
            let n1: std::collections::HashSet<usize> =
                mvd_inter.local_neighborhood(&mv, 0, o).into_iter().collect();
            let n2: std::collections::HashSet<usize> =
                mvd_inter.local_neighborhood(&mv, 1, o).into_iter().collect();
            let inter_size = n1.intersection(&n2).count();
            assert!(inter_size <= n_union.len());
        }
    }

    /// Sparse views: each view alone is too sparse to form clusters, but
    /// the union method pools the neighbourhoods (slide 106).
    #[test]
    fn union_method_rescues_sparse_views() {
        let mut rng = seeded_rng(232);
        let n_per = 30;
        let mut v1 = Dataset::with_dims(1);
        let mut v2 = Dataset::with_dims(1);
        let mut labels = Vec::new();
        for c in 0..2 {
            let base = c as f64 * 50.0;
            for i in 0..n_per {
                labels.push(c);
                // Alternate which view carries the object's information;
                // the other view scatters it widely (sparse/missing-like).
                if i % 2 == 0 {
                    v1.push_row(&[base + 0.3 * gauss(&mut rng)]);
                    v2.push_row(&[base + 30.0 * (rng.gen::<f64>() - 0.5)]);
                } else {
                    v1.push_row(&[base + 30.0 * (rng.gen::<f64>() - 0.5)]);
                    v2.push_row(&[base + 0.3 * gauss(&mut rng)]);
                }
            }
        }
        let mv = MultiViewDataset::new(vec![v1, v2]);
        let truth = Clustering::from_labels(&labels);
        let union = MultiViewDbscan::new(vec![2.0, 2.0], 5, MultiViewMethod::Union).fit(&mv);
        let inter =
            MultiViewDbscan::new(vec![2.0, 2.0], 5, MultiViewMethod::Intersection).fit(&mv);
        let ari_union = adjusted_rand_index(&union, &truth);
        assert!(ari_union > 0.8, "union pools sparse views: {ari_union}");
        assert!(
            inter.num_noise() > union.num_noise(),
            "intersection is stricter on sparse data: {} vs {}",
            inter.num_noise(),
            union.num_noise()
        );
    }

    /// Unreliable views: one view contains misleading coincidences; the
    /// intersection method requires agreement and stays pure (slide 107).
    #[test]
    fn intersection_method_resists_unreliable_view() {
        let mut rng = seeded_rng(233);
        let n_per = 25;
        let mut v1 = Dataset::with_dims(1);
        let mut v2 = Dataset::with_dims(1);
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                labels.push(c);
                // Reliable view separates the groups…
                v1.push_row(&[c as f64 * 40.0 + 0.5 * gauss(&mut rng)]);
                // …the unreliable view collapses everything together.
                v2.push_row(&[0.5 * gauss(&mut rng)]);
            }
        }
        let mv = MultiViewDataset::new(vec![v1, v2]);
        let truth = Clustering::from_labels(&labels);
        let union = MultiViewDbscan::new(vec![2.0, 2.0], 5, MultiViewMethod::Union).fit(&mv);
        let inter =
            MultiViewDbscan::new(vec![2.0, 2.0], 5, MultiViewMethod::Intersection).fit(&mv);
        let ari_union = adjusted_rand_index(&union, &truth);
        let ari_inter = adjusted_rand_index(&inter, &truth);
        assert!(
            ari_inter > ari_union,
            "intersection resists the unreliable view: {ari_inter} vs {ari_union}"
        );
        assert!(ari_inter > 0.8, "intersection recovers the truth: {ari_inter}");
    }

    #[test]
    fn epsilon_count_must_match_views() {
        let v = Dataset::from_rows(&[vec![0.0], vec![1.0]]);
        let mv = MultiViewDataset::new(vec![v.clone(), v]);
        let mvd = MultiViewDbscan::new(vec![1.0], 1, MultiViewMethod::Union);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mvd.fit(&mv)));
        assert!(err.is_err());
    }
}
