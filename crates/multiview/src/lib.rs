//! Clustering in **multiple given views/sources**
//! (tutorial section 5, slides 93–112).
//!
//! Here the views are *input*: each object is described by several sources
//! (CT scan + hemogram, text + anchor text, …), and the goal is one
//! clustering *consistent with all sources* — consensus rather than
//! alternatives. The crate covers the section's three families:
//!
//! * [`co_em`] — multi-view EM that bootstraps two hypotheses by swapping
//!   posteriors between views (Bickel & Scheffer 2004, slides 101–104,
//!   including the non-termination guard the tutorial warns about);
//! * [`mv_dbscan`] — multi-represented DBSCAN with **union** (sparse
//!   views) and **intersection** (unreliable views) core objects
//!   (Kailing et al. 2004a, slides 105–107);
//! * [`spectral`] — multi-view spectral clustering over a convex
//!   combination of per-view normalised affinities, with reliability
//!   weights (de Sa 2005; Zhou & Burges 2007, slide 100);
//! * [`ensemble`] — cluster ensembles: co-association/consensus over many
//!   base clusterings, random-projection ensembles with the soft
//!   co-association `P^θ_{ij} = Σ_l P(l|i,θ)·P(l|j,θ)`, and the
//!   average-NMI consensus objective (Fern & Brodley 2003,
//!   Strehl & Ghosh 2002, slides 108–110).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod co_em;
pub mod ensemble;
pub mod mv_dbscan;
pub mod spectral;

pub use co_em::CoEm;
pub use ensemble::RandomProjectionEnsemble;
pub use mv_dbscan::{MultiViewDbscan, MultiViewMethod};
pub use spectral::MultiViewSpectral;
