//! Multi-view spectral clustering (de Sa 2005; Zhou & Burges 2007) —
//! slide 100's "based on different cluster definitions: e.g. spectral
//! clustering".
//!
//! Each given view induces its own Gaussian affinity; the views are
//! combined as a convex combination of the per-view *normalised*
//! affinities (the mixture-of-random-walks interpretation of
//! Zhou & Burges), and the consensus partition is read off the combined
//! spectral embedding. Per-view weights default to uniform; a reliability
//! weighting is exposed because the tutorial's multi-source section keeps
//! stressing unreliable sources.

use multiclust_core::Clustering;
use multiclust_data::{Dataset, MultiViewDataset};
use multiclust_linalg::vector::{normalize, sq_dist};
use multiclust_linalg::{Matrix, SymmetricEigen};
use rand::rngs::StdRng;

use multiclust_base::KMeans;

/// Multi-view spectral clustering configuration.
#[derive(Clone, Debug)]
pub struct MultiViewSpectral {
    k: usize,
    /// One Gaussian bandwidth per view.
    sigmas: Vec<f64>,
    /// Convex per-view weights (normalised internally); `None` = uniform.
    weights: Option<Vec<f64>>,
}

impl MultiViewSpectral {
    /// `k` clusters with one affinity bandwidth per view.
    ///
    /// # Panics
    /// Panics if `sigmas` is empty or non-positive.
    pub fn new(k: usize, sigmas: Vec<f64>) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(!sigmas.is_empty(), "one σ per view required");
        assert!(sigmas.iter().all(|&s| s > 0.0), "σ must be positive");
        Self { k, sigmas, weights: None }
    }

    /// Sets per-view reliability weights (any non-negative values; they
    /// are normalised to sum 1).
    ///
    /// # Panics
    /// Panics if the weights are all zero or negative.
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        assert!(weights.iter().sum::<f64>() > 0.0, "weights must not all be zero");
        self.weights = Some(weights);
        self
    }

    /// The normalised affinity `D^{-1/2} W D^{-1/2}` of one view.
    fn normalized_affinity(view: &Dataset, sigma: f64) -> Matrix {
        let n = view.len();
        let denom = 2.0 * sigma * sigma;
        let mut w = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let a = (-sq_dist(view.row(i), view.row(j)) / denom).exp();
                w[(i, j)] = a;
                w[(j, i)] = a;
            }
        }
        let dinv: Vec<f64> = (0..n)
            .map(|i| {
                let deg: f64 = (0..n).map(|j| w[(i, j)]).sum();
                if deg > 0.0 {
                    1.0 / deg.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        Matrix::from_fn(n, n, |i, j| dinv[i] * w[(i, j)] * dinv[j])
    }

    /// Clusters the multi-view dataset through the combined embedding.
    ///
    /// # Panics
    /// Panics when the σ (or weight) count differs from the view count.
    pub fn fit(&self, mv: &MultiViewDataset, rng: &mut StdRng) -> Clustering {
        assert_eq!(self.sigmas.len(), mv.num_views(), "one σ per view required");
        let _span = multiclust_telemetry::span("multiview.fit");
        let n = mv.len();
        let weights: Vec<f64> = match &self.weights {
            Some(w) => {
                assert_eq!(w.len(), mv.num_views(), "one weight per view required");
                let s: f64 = w.iter().sum();
                w.iter().map(|&x| x / s).collect()
            }
            None => vec![1.0 / mv.num_views() as f64; mv.num_views()],
        };
        // Convex combination of normalised affinities.
        let mut combined = Matrix::zeros(n, n);
        for (v, (&sigma, &weight)) in self.sigmas.iter().zip(&weights).enumerate() {
            multiclust_telemetry::event(
                "multiview.view",
                &[("view", v as f64), ("weight", weight)],
            );
            if weight == 0.0 {
                continue;
            }
            let norm_w = Self::normalized_affinity(mv.view(v), sigma);
            combined = &combined + &norm_w.scaled(weight);
        }
        let eig = SymmetricEigen::new(&combined);
        // Objective trace: the eigengap behind the k-dimensional embedding
        // — how cleanly the combined walk separates k blocks.
        if multiclust_telemetry::enabled() && eig.values.len() > self.k {
            multiclust_telemetry::event(
                "multiview.embed",
                &[("eigengap", eig.values[self.k - 1] - eig.values[self.k])],
            );
        }
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..self.k).map(|c| eig.vectors[(i, c)]).collect())
            .collect();
        for row in &mut rows {
            if !normalize(row) {
                row[0] = 1.0;
            }
        }
        let embedded = Dataset::from_rows(&rows);
        KMeans::new(self.k).with_restarts(4).fit(&embedded, rng).clustering
    }
}

impl MultiViewSpectral {
    /// Taxonomy card (slide 100's spectral multi-source family).
    pub fn card() -> multiclust_core::taxonomy::AlgorithmCard {
        use multiclust_core::taxonomy::*;
        AlgorithmCard {
            name: "MV-Spectral",
            reference: "Zhou & Burges 2007",
            space: SearchSpace::MultiSource,
            processing: Processing::Simultaneous,
            knowledge: GivenKnowledge::None,
            solutions: Solutions::One,
            subspace: SubspaceAwareness::GivenViews,
            flexibility: Flexibility::Specialized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gauss;
    use multiclust_data::seeded_rng;
    use rand::Rng;

    /// Each view separates only part of the structure: view 1 splits
    /// {0} vs {1,2}, view 2 splits {0,1} vs {2}. Only the combination
    /// resolves all three groups.
    fn complementary_views(seed: u64) -> (MultiViewDataset, Clustering) {
        let mut rng = seeded_rng(seed);
        let mut v1 = Dataset::with_dims(1);
        let mut v2 = Dataset::with_dims(1);
        let mut labels = Vec::new();
        for _ in 0..150 {
            let c = rng.gen_range(0..3usize);
            labels.push(c);
            let b1 = if c == 0 { 0.0 } else { 8.0 }; // groups 1,2 merged
            let b2 = if c == 2 { 8.0 } else { 0.0 }; // groups 0,1 merged
            v1.push_row(&[b1 + gauss(&mut rng)]);
            v2.push_row(&[b2 + gauss(&mut rng)]);
        }
        (
            MultiViewDataset::new(vec![v1, v2]),
            Clustering::from_labels(&labels),
        )
    }

    #[test]
    fn combination_resolves_what_single_views_cannot() {
        let (mv, truth) = complementary_views(291);
        let mut rng = seeded_rng(292);
        let combined = MultiViewSpectral::new(3, vec![1.5, 1.5]).fit(&mv, &mut rng);
        let ari_combined = adjusted_rand_index(&combined, &truth);
        assert!(ari_combined > 0.9, "combined views resolve 3 groups: {ari_combined}");

        // A single view can separate at most 2 of the 3 groups.
        let single = multiclust_base::SpectralClustering::new(3, 1.5)
            .fit(mv.view(0), &mut rng);
        let ari_single = adjusted_rand_index(&single, &truth);
        assert!(
            ari_single < ari_combined,
            "single view is strictly worse: {ari_single} vs {ari_combined}"
        );
    }

    #[test]
    fn zero_weight_ignores_a_view() {
        let (mv, truth) = complementary_views(293);
        let mut rng = seeded_rng(294);
        // All weight on view 1 ⇒ behaves like single-view spectral on it:
        // group 1 and 2 cannot be separated.
        let c = MultiViewSpectral::new(3, vec![1.5, 1.5])
            .with_weights(vec![1.0, 0.0])
            .fit(&mv, &mut rng);
        let ari = adjusted_rand_index(&c, &truth);
        assert!(ari < 0.9, "view 2's information is gone: {ari}");
    }

    #[test]
    fn reliability_weights_downweight_a_noise_view() {
        let mut rng = seeded_rng(295);
        // View 1 is informative, view 2 is pure noise.
        let mut v1 = Dataset::with_dims(1);
        let mut v2 = Dataset::with_dims(1);
        let mut labels = Vec::new();
        for _ in 0..120 {
            let c = usize::from(rng.gen::<bool>());
            labels.push(c);
            v1.push_row(&[c as f64 * 10.0 + gauss(&mut rng)]);
            v2.push_row(&[10.0 * (rng.gen::<f64>() - 0.5)]);
        }
        let mv = MultiViewDataset::new(vec![v1, v2]);
        let truth = Clustering::from_labels(&labels);
        let weighted = MultiViewSpectral::new(2, vec![1.5, 1.5])
            .with_weights(vec![0.95, 0.05])
            .fit(&mv, &mut rng);
        assert!(
            adjusted_rand_index(&weighted, &truth) > 0.9,
            "downweighting the noise view preserves the structure"
        );
    }

    #[test]
    #[should_panic(expected = "one σ per view")]
    fn sigma_count_must_match() {
        let v = Dataset::from_rows(&[vec![0.0], vec![1.0]]);
        let mv = MultiViewDataset::new(vec![v.clone(), v]);
        let mut rng = seeded_rng(296);
        let _ = MultiViewSpectral::new(2, vec![1.0]).fit(&mv, &mut rng);
    }
}
