//! Baseline single-solution clusterers.
//!
//! The tutorial's methods are meta-algorithms: they steer, constrain,
//! transform or combine an *underlying* cluster definition. This crate
//! provides those underlying definitions — exactly the ones the surveyed
//! papers instantiate:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding (Dec-kMeans,
//!   Cui et al., meta clustering, PROCLUS all build on prototypes);
//! * [`gmm`] — Gaussian-mixture EM (CAMI, co-EM);
//! * [`dbscan`] — density-based clustering with noise (SUBCLU,
//!   multi-view DBSCAN);
//! * [`hierarchical`] — agglomerative clustering with exchangeable linkage
//!   (COALA's substrate);
//! * [`spectral`] — normalised spectral clustering (mSC's substrate).
//!
//! All clusterers implement the object-safe [`Clusterer`] trait so the
//! *exchangeable definition* entries of the taxonomy (slide 116) can be
//! exercised literally: any method taking `&dyn Clusterer` accepts any of
//! them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbscan;
pub mod gmm;
pub mod hierarchical;
pub mod kmeans;
pub mod spectral;

pub use dbscan::Dbscan;
pub use gmm::GaussianMixture;
pub use hierarchical::{Agglomerative, Linkage};
pub use kmeans::KMeans;
pub use spectral::SpectralClustering;

use multiclust_core::Clustering;
use multiclust_data::Dataset;
use rand::rngs::StdRng;

/// An exchangeable cluster definition: anything that partitions a dataset.
///
/// The trait is object-safe (`&dyn Clusterer`) because several surveyed
/// methods are explicitly parameterised by "any clustering algorithm"
/// (orthogonal transformations, meta clustering).
pub trait Clusterer {
    /// Clusters the dataset. Deterministic given the RNG state.
    fn cluster(&self, data: &Dataset, rng: &mut StdRng) -> Clustering;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}
