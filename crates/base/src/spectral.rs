//! Normalised spectral clustering (Ng, Jordan & Weiss 2001).
//!
//! The cluster definition behind mSC (Niu & Dy 2010, slide 90), which
//! enforces multiple non-redundant spectral clustering views. Affinities
//! are Gaussian, the embedding uses the top eigenvectors of the normalised
//! affinity `D^{-1/2} W D^{-1/2}`, rows are re-normalised and k-means runs
//! in the embedded space.

use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::kernels;
use multiclust_linalg::power::top_eigenpairs;
use multiclust_linalg::vector::{normalize, sq_dist};
use multiclust_linalg::{Matrix, SymmetricEigen};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kmeans::KMeans;
use crate::Clusterer;

/// Spectral clustering configuration.
#[derive(Clone, Copy, Debug)]
pub struct SpectralClustering {
    k: usize,
    sigma: f64,
    /// Above this many objects the embedding switches from a full Jacobi
    /// eigendecomposition (`O(n³)`) to block power iteration for just the
    /// top `k` eigenvectors (`O(k·n²)` per sweep).
    dense_eigen_limit: usize,
}

impl SpectralClustering {
    /// `k` clusters with Gaussian affinity bandwidth `sigma`.
    ///
    /// # Panics
    /// Panics unless `k ≥ 1` and `sigma > 0`.
    pub fn new(k: usize, sigma: f64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(sigma > 0.0, "sigma must be positive");
        Self { k, sigma, dense_eigen_limit: 220 }
    }

    /// Overrides the size above which the top-k power-iteration solver is
    /// used instead of the full Jacobi decomposition.
    #[must_use]
    pub fn with_dense_eigen_limit(mut self, limit: usize) -> Self {
        self.dense_eigen_limit = limit;
        self
    }

    /// The Gaussian affinity matrix `W` with zero diagonal.
    ///
    /// The engine tiers (`engine`, `blocked`) delegate to the fused
    /// [`kernels::gaussian_affinity_matrix`] builder: panel-packed dot-form
    /// distance rows, an underflow screen that certifies far pairs as exact
    /// `+0.0` without calling `exp`, and a tiled mirror pass — each pair is
    /// evaluated once and the `kernels.estimates` counter ticks per pair.
    /// The naive reference recomputes each pair per cell. All paths yield
    /// the same bits: the dot-form estimate never replaces the exact
    /// subtractive `sq_dist`, and `sq_dist(x, y) == sq_dist(y, x)` exactly
    /// in IEEE arithmetic, so the mirrored value equals the directly
    /// computed one.
    pub fn affinity(&self, data: &Dataset) -> Matrix {
        let n = data.len();
        let denom = 2.0 * self.sigma * self.sigma;
        if kernels::kernel_mode().uses_engine() {
            return kernels::gaussian_affinity_matrix(data.dims(), data.as_slice(), denom);
        }
        if multiclust_parallel::current_threads() == 1 {
            let mut w = Matrix::zeros(n, n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let a = (-sq_dist(data.row(i), data.row(j)) / denom).exp();
                    w[(i, j)] = a;
                    w[(j, i)] = a;
                }
            }
            return w;
        }
        Matrix::par_from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else {
                (-sq_dist(data.row(i), data.row(j)) / denom).exp()
            }
        })
    }

    /// The spectral embedding: rows of the top-`k` eigenvectors of
    /// `D^{-1/2} W D^{-1/2}`, row-normalised.
    pub fn embed(&self, data: &Dataset) -> Dataset {
        let _span = multiclust_telemetry::span("spectral.embed");
        let n = data.len();
        let mut w = {
            let _span = multiclust_telemetry::span("affinity");
            self.affinity(data)
        };
        // D^{-1/2}: per-row degree sums are independent, so they parallelise
        // without changing the in-row summation order.
        let dinv_sqrt: Vec<f64> =
            multiclust_parallel::par_map_indexed(n, (1 << 14) / n.max(1) + 1, |i| {
                let deg: f64 = (0..n).map(|j| w[(i, j)]).sum();
                if deg > 0.0 {
                    1.0 / deg.sqrt()
                } else {
                    0.0
                }
            });
        // Normalise `W` into `D^{-1/2} W D^{-1/2}`. The engine tiers scale
        // the affinity matrix in place, saving the second `n×n` allocation
        // (for bench-scale n this is megabytes of traffic); naive keeps the
        // historical out-of-place build as the reference. Both evaluate
        // `dinv[i] * w * dinv[j]` in the same association order, so the
        // scaled entries are bit-identical either way.
        let norm_w = if kernels::kernel_mode().uses_engine() {
            multiclust_parallel::par_chunks_mut(w.as_mut_slice(), n, |start, row| {
                let di = dinv_sqrt[start / n];
                for (j, v) in row.iter_mut().enumerate() {
                    *v = di * *v * dinv_sqrt[j];
                }
            });
            w
        } else {
            Matrix::par_from_fn(n, n, |i, j| dinv_sqrt[i] * w[(i, j)] * dinv_sqrt[j])
        };
        // Top-k eigenvectors as embedding rows. For small n a full Jacobi
        // decomposition is cheap; beyond the limit, block power iteration
        // computes only the k needed vectors (the normalised affinity's
        // spectrum lies in [-1, 1], so shift = 1 makes the algebraically
        // largest eigenvalues dominant in magnitude).
        let mut rows: Vec<Vec<f64>> = if n <= self.dense_eigen_limit {
            let eig = SymmetricEigen::new(&norm_w);
            (0..n)
                .map(|i| (0..self.k).map(|c| eig.vectors[(i, c)]).collect())
                .collect()
        } else {
            // The start block only seeds a subspace iteration; a fixed
            // internal seed keeps `embed` deterministic.
            let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
            let top = top_eigenpairs(&norm_w, self.k, 1.0, 1e-10, 500, &mut rng);
            (0..n)
                .map(|i| (0..self.k).map(|c| top.vectors[(i, c)]).collect())
                .collect()
        };
        for row in &mut rows {
            if !normalize(row) {
                // Isolated object: park it at a fixed unit vector.
                row[0] = 1.0;
            }
        }
        Dataset::from_rows(&rows)
    }

    /// Clusters the dataset through the spectral embedding.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> Clustering {
        let _span = multiclust_telemetry::span("spectral.fit");
        let embedded = self.embed(data);
        KMeans::new(self.k)
            .with_restarts(4)
            .fit(&embedded, rng)
            .clustering
    }
}

impl Clusterer for SpectralClustering {
    fn cluster(&self, data: &Dataset, rng: &mut StdRng) -> Clustering {
        self.fit(data, rng)
    }

    fn name(&self) -> &'static str {
        "spectral"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::{gaussian_blobs, ring2d};
    use multiclust_data::seeded_rng;

    #[test]
    fn separates_gaussian_blobs() {
        let mut rng = seeded_rng(61);
        let (data, truth) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![10.0, 10.0]],
            0.8,
            30,
            &mut rng,
        );
        let c = SpectralClustering::new(2, 2.0).fit(&data, &mut rng);
        let truth_c = Clustering::from_labels(&truth);
        assert!(adjusted_rand_index(&c, &truth_c) > 0.99);
    }

    #[test]
    fn separates_ring_from_center_blob() {
        // The classic non-convex case where k-means fails but spectral
        // clustering succeeds.
        let mut rng = seeded_rng(62);
        let ring = ring2d(120, (0.0, 0.0), 10.0, 0.2, &mut rng);
        let (blob, _) = gaussian_blobs(&[vec![0.0, 0.0]], 0.8, 60, &mut rng);
        let mut data = ring.clone();
        for row in blob.rows() {
            data.push_row(row);
        }
        let truth: Vec<usize> = (0..180).map(|i| usize::from(i >= 120)).collect();
        let truth_c = Clustering::from_labels(&truth);

        let spectral = SpectralClustering::new(2, 1.5).fit(&data, &mut rng);
        let kmeans = KMeans::new(2).with_restarts(4).fit(&data, &mut rng).clustering;
        let ari_spectral = adjusted_rand_index(&spectral, &truth_c);
        let ari_kmeans = adjusted_rand_index(&kmeans, &truth_c);
        assert!(ari_spectral > 0.95, "spectral ARI {ari_spectral}");
        assert!(ari_kmeans < 0.5, "k-means cannot cut the ring: {ari_kmeans}");
    }

    #[test]
    fn affinity_is_symmetric_zero_diagonal() {
        let mut rng = seeded_rng(63);
        let (data, _) = gaussian_blobs(&[vec![0.0, 0.0]], 1.0, 10, &mut rng);
        let w = SpectralClustering::new(2, 1.0).affinity(&data);
        assert!(w.is_symmetric(0.0));
        for i in 0..10 {
            assert_eq!(w[(i, i)], 0.0);
        }
    }

    /// The default (engine-tier) affinity path must reproduce the naive
    /// per-pair Gaussian bit-for-bit. The naive expectation is computed
    /// inline here rather than by flipping the process-global kernel mode,
    /// so this test cannot race with concurrently running ones.
    #[test]
    fn affinity_engine_tier_matches_naive_bits() {
        let mut rng = seeded_rng(68);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0, 0.0], vec![6.0, -2.0, 3.0]],
            1.1,
            45,
            &mut rng,
        );
        let sigma = 1.3;
        let denom = 2.0 * sigma * sigma;
        let w = SpectralClustering::new(2, sigma).affinity(&data);
        for i in 0..data.len() {
            for j in 0..data.len() {
                let want = if i == j {
                    0.0
                } else {
                    (-sq_dist(data.row(i), data.row(j)) / denom).exp()
                };
                assert_eq!(
                    w[(i, j)].to_bits(),
                    want.to_bits(),
                    "entry ({i}, {j}): {} vs {}",
                    w[(i, j)],
                    want
                );
            }
        }
    }

    #[test]
    fn embedding_rows_unit_length() {
        let mut rng = seeded_rng(64);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![5.0, 5.0]],
            1.0,
            15,
            &mut rng,
        );
        let e = SpectralClustering::new(2, 1.0).embed(&data);
        for row in e.rows() {
            let norm2: f64 = row.iter().map(|x| x * x).sum();
            assert!((norm2 - 1.0).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod power_path_tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gaussian_blobs;
    use multiclust_data::seeded_rng;

    /// The power-iteration path and the full Jacobi path must agree on the
    /// final clustering.
    #[test]
    fn power_iteration_path_matches_jacobi_path() {
        let mut rng = seeded_rng(65);
        let (data, truth) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![12.0, 0.0], vec![0.0, 12.0]],
            0.8,
            40,
            &mut rng,
        );
        let truth_c = Clustering::from_labels(&truth);
        // Force the power path by dropping the limit below n = 120.
        let via_power = SpectralClustering::new(3, 2.0)
            .with_dense_eigen_limit(10)
            .fit(&data, &mut seeded_rng(66));
        let via_jacobi = SpectralClustering::new(3, 2.0)
            .with_dense_eigen_limit(10_000)
            .fit(&data, &mut seeded_rng(66));
        assert!(adjusted_rand_index(&via_power, &truth_c) > 0.99);
        assert_eq!(
            adjusted_rand_index(&via_power, &via_jacobi),
            1.0,
            "both eigen paths induce the same partition"
        );
    }

    /// `embed` stays deterministic on the power path (fixed internal seed).
    #[test]
    fn power_path_embedding_is_deterministic() {
        let mut rng = seeded_rng(67);
        let (data, _) = gaussian_blobs(&[vec![0.0], vec![8.0]], 1.0, 30, &mut rng);
        let s = SpectralClustering::new(2, 1.5).with_dense_eigen_limit(5);
        assert_eq!(s.embed(&data), s.embed(&data));
    }
}
