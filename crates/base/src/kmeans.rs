//! Lloyd's k-means with k-means++ seeding and multiple restarts.

use multiclust_core::measures::quality::sum_of_squared_errors;
use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::kernels::{sq_norms, NearestAssign};
use multiclust_linalg::vector::sq_dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Clusterer;

/// Configuration for k-means.
///
/// ```
/// use multiclust_base::KMeans;
/// use multiclust_data::{seeded_rng, Dataset};
/// let data = Dataset::from_rows(&[vec![0.0], vec![0.1], vec![9.0], vec![9.1]]);
/// let res = KMeans::new(2).fit(&data, &mut seeded_rng(1));
/// assert!(res.clustering.same_cluster(0, 1));
/// assert!(!res.clustering.same_cluster(0, 2));
/// ```
#[derive(Clone, Debug)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    n_init: usize,
    tol: f64,
}

/// The output of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// The hard partition (no noise).
    pub clustering: Clustering,
    /// Final cluster centroids (`k` rows, dataset dimensionality columns).
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared errors of the final partition.
    pub sse: f64,
    /// Lloyd iterations of the best restart.
    pub iterations: usize,
}

impl KMeans {
    /// k-means with `k` clusters and default settings
    /// (100 iterations, 1 restart, tolerance `1e-8`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self { k, max_iter: 100, n_init: 1, tol: 1e-8 }
    }

    /// Sets the maximum Lloyd iterations per restart.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the number of restarts (best SSE wins).
    #[must_use]
    pub fn with_restarts(mut self, n_init: usize) -> Self {
        assert!(n_init >= 1, "at least one initialisation required");
        self.n_init = n_init;
        self
    }

    /// Sets the centroid-movement convergence tolerance.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Runs k-means, returning the best of the configured restarts.
    ///
    /// Each restart draws a seed from `rng` up front and runs on its own
    /// generator, so restarts are independent and can execute in parallel;
    /// the winner (lowest SSE, earliest restart on ties) is identical at
    /// any thread count.
    ///
    /// # Panics
    /// Panics when the dataset has fewer objects than `k`.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> KMeansResult {
        assert!(data.len() >= self.k, "need at least k objects");
        let _span = multiclust_telemetry::span("kmeans.fit");
        multiclust_telemetry::counter_add("kmeans.restarts", self.n_init as u64);
        let seeds: Vec<u64> = (0..self.n_init).map(|_| rng.gen()).collect();
        // Row norms are shared by every restart's bound-pruned assignment.
        let norms = sq_norms(data.dims(), data.as_slice());
        let runs = multiclust_parallel::par_map_indexed(self.n_init, 1, |r| {
            self.fit_once(data, &norms, &mut StdRng::seed_from_u64(seeds[r]), r)
        });
        let best = runs
            .into_iter()
            .reduce(|best, run| if run.sse < best.sse { run } else { best })
            .expect("n_init >= 1");
        multiclust_telemetry::counter_add("kmeans.iterations", best.iterations as u64);
        if multiclust_telemetry::enabled() {
            multiclust_telemetry::event(
                "kmeans.done",
                &[
                    ("sse", best.sse),
                    ("iterations", best.iterations as f64),
                    ("budget", self.max_iter as f64),
                ],
            );
        }
        best
    }

    fn fit_once(
        &self,
        data: &Dataset,
        norms: &[f64],
        rng: &mut StdRng,
        restart: usize,
    ) -> KMeansResult {
        let mut centroids = plus_plus_init(data, self.k, rng);
        let n = data.len();
        let d = data.dims();
        let mut iterations = 0;
        // Bound-pruned assignment through the shared kernel engine: labels
        // are bit-identical to the exhaustive `nearest` scan at any thread
        // count and in every kernel tier — scalar `engine`, cache-blocked
        // SIMD `blocked`, or `naive` (see DESIGN.md, "Distance engine" and
        // "SIMD and blocking").
        let mut assigner = NearestAssign::new(n);
        for it in 0..self.max_iter {
            iterations = it + 1;
            // Assignment step.
            assigner.assign(d, data.as_slice(), norms, &centroids);
            let labels = assigner.labels();
            // Convergence trace: the k-means objective (inertia) of the
            // fresh assignment against the centroids it was made with.
            // Computed only when telemetry records — it reads state, never
            // changes it, so results are identical either way.
            if multiclust_telemetry::enabled() {
                let inertia: f64 = (0..n)
                    .map(|i| sq_dist(data.row(i), &centroids[labels[i]]))
                    .sum();
                multiclust_telemetry::event(
                    "kmeans.iter",
                    &[
                        ("restart", restart as f64),
                        ("iter", it as f64),
                        ("inertia", inertia),
                    ],
                );
            }
            // Update step.
            let mut sums = vec![vec![0.0; d]; self.k];
            let mut counts = vec![0usize; self.k];
            for (i, row) in data.rows().enumerate() {
                counts[labels[i]] += 1;
                for (s, &x) in sums[labels[i]].iter_mut().zip(row) {
                    *s += x;
                }
            }
            let mut moved: f64 = 0.0;
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster on a random object — keeps k
                    // clusters alive, matching standard practice.
                    let pick = rng.gen_range(0..n);
                    sums[c] = data.row(pick).to_vec();
                    counts[c] = 1;
                }
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                moved = moved.max(sq_dist(&sums[c], &centroids[c]));
                centroids[c] = std::mem::take(&mut sums[c]);
            }
            if moved <= self.tol {
                break;
            }
        }
        // Final assignment against the last centroids.
        assigner.assign(d, data.as_slice(), norms, &centroids);
        let clustering = Clustering::from_labels(assigner.labels());
        let sse = sum_of_squared_errors(data, &clustering);
        KMeansResult { clustering, centroids, sse, iterations }
    }
}

impl Clusterer for KMeans {
    fn cluster(&self, data: &Dataset, rng: &mut StdRng) -> Clustering {
        self.fit(data, rng).clustering
    }

    fn name(&self) -> &'static str {
        "k-means"
    }
}

/// Index and squared distance of the nearest centre to `row`.
pub fn nearest(row: &[f64], centers: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (c, center) in centers.iter().enumerate() {
        let d2 = sq_dist(row, center);
        if d2 < best.1 {
            best = (c, d2);
        }
    }
    best
}

/// k-means++ seeding: the first centre uniform, subsequent centres sampled
/// proportionally to squared distance from the nearest chosen centre.
pub fn plus_plus_init(data: &Dataset, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = data.len();
    let d = data.dims();
    // Per-object distance updates are elementwise, so they parallelise
    // without changing any value; the weighted pick below stays serial
    // (it is a cumulative scan).
    let chunk = (1usize << 14) / d.max(1) + 1;
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(data.row(rng.gen_range(0..n)).to_vec());
    let mut d2: Vec<f64> = multiclust_parallel::par_map_indexed(n, chunk, |i| {
        sq_dist(data.row(i), &centers[0])
    });
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining mass at distance zero (duplicate points):
            // fall back to uniform sampling.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centers.push(data.row(next).to_vec());
        let latest = centers.last().expect("just pushed");
        d2 = multiclust_parallel::par_map_indexed(n, chunk, |i| {
            d2[i].min(sq_dist(data.row(i), latest))
        });
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gaussian_blobs;
    use multiclust_data::seeded_rng;

    #[test]
    fn recovers_well_separated_blobs() {
        let mut rng = seeded_rng(21);
        let centers = vec![vec![0.0, 0.0], vec![20.0, 0.0], vec![0.0, 20.0]];
        let (data, truth) = gaussian_blobs(&centers, 1.0, 40, &mut rng);
        let res = KMeans::new(3).with_restarts(4).fit(&data, &mut rng);
        let truth_c = Clustering::from_labels(&truth);
        assert!(adjusted_rand_index(&res.clustering, &truth_c) > 0.99);
        assert_eq!(res.clustering.num_clusters(), 3);
    }

    #[test]
    fn sse_decreases_with_more_clusters() {
        let mut rng = seeded_rng(22);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![10.0, 10.0]],
            2.0,
            50,
            &mut rng,
        );
        let sse2 = KMeans::new(2).with_restarts(3).fit(&data, &mut rng).sse;
        let sse4 = KMeans::new(4).with_restarts(3).fit(&data, &mut rng).sse;
        assert!(sse4 < sse2);
    }

    #[test]
    fn k_equals_one_groups_everything() {
        let mut rng = seeded_rng(23);
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]);
        let res = KMeans::new(1).fit(&data, &mut rng);
        assert_eq!(res.clustering.sizes(), vec![3]);
        assert!((res.centroids[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = {
            let mut rng = seeded_rng(24);
            gaussian_blobs(&[vec![0.0; 3], vec![8.0; 3]], 1.0, 30, &mut rng).0
        };
        let a = KMeans::new(2).fit(&data, &mut seeded_rng(7)).clustering;
        let b = KMeans::new(2).fit(&data, &mut seeded_rng(7)).clustering;
        assert_eq!(a, b);
    }

    #[test]
    fn plus_plus_spreads_initial_centers() {
        let mut rng = seeded_rng(25);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![100.0, 100.0]],
            0.5,
            50,
            &mut rng,
        );
        let centers = plus_plus_init(&data, 2, &mut rng);
        // The two seeds should land in different blobs with overwhelming
        // probability given the separation.
        let d2 = sq_dist(&centers[0], &centers[1]);
        assert!(d2 > 1000.0, "seeds too close: {d2}");
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let mut rng = seeded_rng(26);
        let data = Dataset::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let res = KMeans::new(2).fit(&data, &mut rng);
        assert_eq!(res.clustering.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least k objects")]
    fn too_few_objects_panics() {
        let mut rng = seeded_rng(27);
        let data = Dataset::from_rows(&[vec![1.0]]);
        let _ = KMeans::new(2).fit(&data, &mut rng);
    }
}
