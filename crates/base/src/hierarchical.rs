//! Agglomerative hierarchical clustering with exchangeable linkage.
//!
//! COALA (slides 31–33) is an average-link agglomerative algorithm with a
//! constraint-aware merge rule; this module provides the unconstrained
//! substrate (single/complete/average linkage) plus the dendrogram, so the
//! alternative-clustering crate only adds the dual-merge logic.

use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::vector::dist;
use rand::rngs::StdRng;

use crate::Clusterer;

/// Linkage criterion for merging clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Mean pairwise distance (COALA's choice).
    Average,
}

/// One merge step of the dendrogram: clusters `a` and `b` (indices into the
/// merge history, with `0..n` the singletons) merged at `distance`.
#[derive(Clone, Copy, Debug)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
}

/// Agglomerative clustering configuration.
#[derive(Clone, Copy, Debug)]
pub struct Agglomerative {
    k: usize,
    linkage: Linkage,
}

impl Agglomerative {
    /// Agglomerates until `k` clusters remain.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, linkage: Linkage) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self { k, linkage }
    }

    /// Runs the agglomeration, returning the flat `k`-clustering and the
    /// merge history (length `n − k`).
    pub fn fit(&self, data: &Dataset) -> (Clustering, Vec<Merge>) {
        let n = data.len();
        assert!(n >= self.k, "need at least k objects");
        // Active clusters as member lists; id = position in `groups`.
        let mut groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut merges = Vec::with_capacity(n.saturating_sub(self.k));
        while groups.len() > self.k {
            // Find the closest pair under the linkage.
            let mut best = (0usize, 1usize, f64::INFINITY);
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    let d = linkage_distance(data, &groups[i], &groups[j], self.linkage);
                    if d < best.2 {
                        best = (i, j, d);
                    }
                }
            }
            let (i, j, d) = best;
            merges.push(Merge { a: i, b: j, distance: d });
            let merged = groups.swap_remove(j); // j > i, i survives
            groups[i].extend(merged);
        }
        (Clustering::from_members(n, &groups), merges)
    }
}

/// Linkage distance between two member lists.
pub fn linkage_distance(
    data: &Dataset,
    a: &[usize],
    b: &[usize],
    linkage: Linkage,
) -> f64 {
    debug_assert!(!a.is_empty() && !b.is_empty());
    match linkage {
        Linkage::Single => {
            let mut best = f64::INFINITY;
            for &i in a {
                for &j in b {
                    best = best.min(dist(data.row(i), data.row(j)));
                }
            }
            best
        }
        Linkage::Complete => {
            let mut worst = 0.0f64;
            for &i in a {
                for &j in b {
                    worst = worst.max(dist(data.row(i), data.row(j)));
                }
            }
            worst
        }
        Linkage::Average => {
            let mut sum = 0.0;
            for &i in a {
                for &j in b {
                    sum += dist(data.row(i), data.row(j));
                }
            }
            sum / (a.len() * b.len()) as f64
        }
    }
}

impl Clusterer for Agglomerative {
    fn cluster(&self, data: &Dataset, _rng: &mut StdRng) -> Clustering {
        self.fit(data).0
    }

    fn name(&self) -> &'static str {
        match self.linkage {
            Linkage::Single => "agglomerative-single",
            Linkage::Complete => "agglomerative-complete",
            Linkage::Average => "agglomerative-average",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gaussian_blobs;
    use multiclust_data::seeded_rng;

    #[test]
    fn average_link_recovers_blobs() {
        let mut rng = seeded_rng(51);
        let (data, truth) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![15.0, 0.0], vec![0.0, 15.0]],
            1.0,
            20,
            &mut rng,
        );
        let (c, merges) = Agglomerative::new(3, Linkage::Average).fit(&data);
        assert_eq!(merges.len(), 57);
        let truth_c = Clustering::from_labels(&truth);
        assert!(adjusted_rand_index(&c, &truth_c) > 0.99);
    }

    #[test]
    fn single_link_chains_where_complete_does_not() {
        // Two tight pairs bridged by a chain: single-link merges along the
        // chain first; complete-link resists elongated clusters.
        let data = Dataset::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
            vec![10.0],
        ]);
        let (single, _) = Agglomerative::new(2, Linkage::Single).fit(&data);
        // Chain 0..4 becomes one cluster, 10 alone.
        assert!(single.same_cluster(0, 4));
        assert!(!single.same_cluster(0, 5));
    }

    #[test]
    fn k_equals_n_yields_singletons() {
        let data = Dataset::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let (c, merges) = Agglomerative::new(3, Linkage::Average).fit(&data);
        assert_eq!(c.num_clusters(), 3);
        assert!(merges.is_empty());
        assert_eq!(c.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn merge_distances_recorded() {
        let data = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]);
        let (_, merges) = Agglomerative::new(1, Linkage::Single).fit(&data);
        assert_eq!(merges.len(), 2);
        assert!((merges[0].distance - 1.0).abs() < 1e-12);
        assert!((merges[1].distance - 9.0).abs() < 1e-12);
    }

    #[test]
    fn linkage_distances_ordered() {
        let data = Dataset::from_rows(&[vec![0.0], vec![2.0], vec![10.0], vec![11.0]]);
        let a = [0usize, 1];
        let b = [2usize, 3];
        let s = linkage_distance(&data, &a, &b, Linkage::Single);
        let avg = linkage_distance(&data, &a, &b, Linkage::Average);
        let c = linkage_distance(&data, &a, &b, Linkage::Complete);
        assert!(s <= avg && avg <= c);
        assert_eq!(s, 8.0);
        assert_eq!(c, 11.0);
        assert_eq!(avg, (10.0 + 11.0 + 8.0 + 9.0) / 4.0);
    }
}
