//! DBSCAN density-based clustering (Ester et al. 1996).
//!
//! The density substrate of the tutorial: SUBCLU runs DBSCAN in subspace
//! projections (slide 74) and the multi-view adaptation of Kailing et al.
//! redefines its core-object property over several sources
//! (slides 105–107). The implementation therefore exposes the neighbourhood
//! and core predicates separately so those adaptations can reuse them.

use multiclust_core::Clustering;
use multiclust_data::Dataset;
use multiclust_linalg::vector::sq_dist;
use rand::rngs::StdRng;

use crate::Clusterer;

/// DBSCAN configuration: `eps`-neighbourhood radius and `min_pts` density
/// threshold (the core-object test counts the object itself, following the
/// original paper).
#[derive(Clone, Copy, Debug)]
pub struct Dbscan {
    eps: f64,
    min_pts: usize,
}

impl Dbscan {
    /// Creates a DBSCAN configuration.
    ///
    /// # Panics
    /// Panics unless `eps > 0` and `min_pts ≥ 1`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        assert!(min_pts >= 1, "min_pts must be at least 1");
        Self { eps, min_pts }
    }

    /// The `ε`-neighbourhood of object `i` (including `i` itself).
    pub fn neighborhood(&self, data: &Dataset, i: usize) -> Vec<usize> {
        let eps2 = self.eps * self.eps;
        let ri = data.row(i);
        (0..data.len())
            .filter(|&j| sq_dist(ri, data.row(j)) <= eps2)
            .collect()
    }

    /// Clusters the dataset; unassigned objects are noise.
    pub fn fit(&self, data: &Dataset) -> Clustering {
        let n = data.len();
        // Precompute neighbourhoods (O(n²) — fine at tutorial scale, and
        // reused by the expansion loop).
        let neighborhoods: Vec<Vec<usize>> =
            (0..n).map(|i| self.neighborhood(data, i)).collect();
        expand_from_cores(n, |i| neighborhoods[i].len() >= self.min_pts, |i| {
            neighborhoods[i].clone()
        })
    }
}

/// Generic DBSCAN expansion given a core predicate and a reachability
/// function — shared with multi-view DBSCAN, whose union/intersection core
/// objects plug in here.
pub fn expand_from_cores(
    n: usize,
    is_core: impl Fn(usize) -> bool,
    reachable: impl Fn(usize) -> Vec<usize>,
) -> Clustering {
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;
    for start in 0..n {
        if visited[start] || !is_core(start) {
            continue;
        }
        // Breadth-first expansion over density-reachable objects.
        let mut queue = vec![start];
        visited[start] = true;
        assignment[start] = Some(cluster);
        while let Some(p) = queue.pop() {
            if !is_core(p) {
                continue; // border object: belongs, but does not expand
            }
            for q in reachable(p) {
                if assignment[q].is_none() {
                    assignment[q] = Some(cluster);
                }
                if !visited[q] {
                    visited[q] = true;
                    queue.push(q);
                }
            }
        }
        cluster += 1;
    }
    Clustering::from_options(assignment)
}

impl Clusterer for Dbscan {
    fn cluster(&self, data: &Dataset, _rng: &mut StdRng) -> Clustering {
        self.fit(data)
    }

    fn name(&self) -> &'static str {
        "dbscan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::{gaussian_blobs, ring2d};
    use multiclust_data::seeded_rng;

    #[test]
    fn separates_blobs_and_flags_noise() {
        let mut rng = seeded_rng(41);
        let (mut data, truth) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![10.0, 10.0]],
            0.5,
            40,
            &mut rng,
        );
        // Add two far-away noise points.
        data.push_row(&[100.0, -100.0]);
        data.push_row(&[-100.0, 100.0]);
        let c = Dbscan::new(1.5, 4).fit(&data);
        assert_eq!(c.num_noise(), 2);
        assert_eq!(c.assignment(80), None);
        let truth_c = Clustering::from_labels(&truth).restricted(&(0..80).collect::<Vec<_>>());
        let found = c.restricted(&(0..80).collect::<Vec<_>>());
        assert!(adjusted_rand_index(&found, &truth_c) > 0.99);
    }

    #[test]
    fn finds_ring_cluster_as_one() {
        let mut rng = seeded_rng(42);
        let data = ring2d(300, (0.0, 0.0), 10.0, 0.2, &mut rng);
        let c = Dbscan::new(1.5, 4).fit(&data);
        // One connected ring-shaped cluster — prototype methods cannot do
        // this, density methods can (the slide-74 point).
        let sizes = c.sizes();
        assert_eq!(sizes.len(), 1, "sizes {sizes:?}");
        assert!(c.num_noise() < 10);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let mut rng = seeded_rng(43);
        let (data, _) = gaussian_blobs(&[vec![0.0, 0.0]], 1.0, 30, &mut rng);
        let c = Dbscan::new(1e-6, 3).fit(&data);
        assert_eq!(c.num_noise(), 30);
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn single_cluster_when_eps_huge() {
        let mut rng = seeded_rng(44);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![5.0, 5.0]],
            1.0,
            20,
            &mut rng,
        );
        let c = Dbscan::new(1e6, 3).fit(&data);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.num_noise(), 0);
    }

    #[test]
    fn border_points_join_but_do_not_expand() {
        // Chain with spacing 0.4 and eps 0.85: interior chain points see
        // two neighbours each side (core at min_pts 4); the point at 2.7 is
        // a border object (3 neighbours incl. itself) and the point at 3.3
        // is only adjacent to that border object.
        let data = Dataset::from_rows(&[
            vec![0.0],
            vec![0.4],
            vec![0.8],
            vec![1.2],
            vec![1.6],
            vec![2.0],
            vec![2.7], // border: neighbourhood {2.0, 2.7, 3.3}
            vec![3.3], // reachable only through the border point
        ]);
        let c = Dbscan::new(0.85, 4).fit(&data);
        assert!(c.assignment(6).is_some(), "border point joins the cluster");
        assert_eq!(c.assignment(7), None, "not density-reachable through a border point");
    }

    #[test]
    fn neighborhood_includes_self() {
        let data = Dataset::from_rows(&[vec![0.0], vec![10.0]]);
        let db = Dbscan::new(1.0, 1);
        assert_eq!(db.neighborhood(&data, 0), vec![0]);
    }
}
