//! Gaussian mixture models fitted by expectation–maximisation.
//!
//! The generative substrate for CAMI (each clustering is a Gaussian
//! mixture, slide 43) and co-EM (slides 101–104). Covariances can be full
//! or diagonal; densities are evaluated via Cholesky factors in log space
//! for numerical stability.

use multiclust_core::{Clustering, SoftClustering};
use multiclust_data::Dataset;
use multiclust_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;

use crate::kmeans::plus_plus_init;
use crate::Clusterer;

/// Covariance structure of the mixture components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Covariance {
    /// Full `d × d` covariance per component.
    Full,
    /// Diagonal covariance per component.
    Diagonal,
}

/// A single Gaussian component.
#[derive(Clone, Debug)]
pub struct Component {
    /// Mixing weight `λ_j` (weights sum to one across components).
    pub weight: f64,
    /// Mean vector `μ_j`.
    pub mean: Vec<f64>,
    /// Covariance `Σ_j` (diagonal structure still stored densely).
    pub cov: Matrix,
}

/// Configuration for EM fitting of a Gaussian mixture.
#[derive(Clone, Debug)]
pub struct GaussianMixture {
    k: usize,
    max_iter: usize,
    tol: f64,
    covariance: Covariance,
    reg: f64,
}

/// A fitted mixture model.
#[derive(Clone, Debug)]
pub struct GmmResult {
    /// The fitted components.
    pub components: Vec<Component>,
    /// Posterior responsibilities per object.
    pub soft: SoftClustering,
    /// Final total log-likelihood `L(Θ, DB)`.
    pub log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
}

impl GmmResult {
    /// Hard clustering by maximum responsibility.
    pub fn to_hard(&self) -> Clustering {
        self.soft.to_hard()
    }
}

impl GaussianMixture {
    /// A mixture of `k` Gaussians with default settings (full covariance,
    /// 200 iterations, tolerance `1e-6`, regularisation `1e-6`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self { k, max_iter: 200, tol: 1e-6, covariance: Covariance::Full, reg: 1e-6 }
    }

    /// Sets the covariance structure.
    #[must_use]
    pub fn with_covariance(mut self, covariance: Covariance) -> Self {
        self.covariance = covariance;
        self
    }

    /// Sets the maximum EM iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the log-likelihood convergence tolerance.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the covariance ridge regularisation added to each diagonal.
    #[must_use]
    pub fn with_regularization(mut self, reg: f64) -> Self {
        assert!(reg > 0.0, "regularisation must be positive");
        self.reg = reg;
        self
    }

    /// Fits the mixture by EM, seeding means with k-means++.
    ///
    /// # Panics
    /// Panics when the dataset has fewer objects than `k`.
    pub fn fit(&self, data: &Dataset, rng: &mut StdRng) -> GmmResult {
        assert!(data.len() >= self.k, "need at least k objects");
        let n = data.len();
        let d = data.dims();

        // Initialise: k-means++ means, global covariance, uniform weights.
        let means = plus_plus_init(data, self.k, rng);
        let global_cov = empirical_covariance(data, self.covariance, self.reg);
        let mut components: Vec<Component> = means
            .into_iter()
            .map(|mean| Component {
                weight: 1.0 / self.k as f64,
                mean,
                cov: global_cov.clone(),
            })
            .collect();

        let mut resp = vec![vec![0.0; self.k]; n];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut log_likelihood = prev_ll;

        for it in 0..self.max_iter {
            iterations = it + 1;
            // E step.
            log_likelihood = self.e_step(data, &components, &mut resp);
            // M step.
            self.m_step(data, &resp, &mut components, d);
            if (log_likelihood - prev_ll).abs() <= self.tol * log_likelihood.abs().max(1.0) {
                break;
            }
            prev_ll = log_likelihood;
        }

        GmmResult {
            components,
            soft: SoftClustering::new(resp),
            log_likelihood,
            iterations,
        }
    }

    /// One E step: fills `resp` and returns the total log-likelihood.
    fn e_step(
        &self,
        data: &Dataset,
        components: &[Component],
        resp: &mut [Vec<f64>],
    ) -> f64 {
        let factors: Vec<(Cholesky, f64)> = components
            .iter()
            .map(|c| {
                let ch = Cholesky::new(&c.cov)
                    .expect("regularised covariance is positive definite");
                let log_norm = -0.5
                    * (c.mean.len() as f64 * (2.0 * std::f64::consts::PI).ln()
                        + ch.log_det());
                (ch, log_norm)
            })
            .collect();
        let mut total = 0.0;
        for (i, row) in data.rows().enumerate() {
            let log_p: Vec<f64> = components
                .iter()
                .zip(&factors)
                .map(|(c, (ch, log_norm))| {
                    c.weight.max(1e-300).ln() + log_norm
                        - 0.5 * ch.mahalanobis_sq(row, &c.mean)
                })
                .collect();
            let max = log_p.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            let sum_exp: f64 = log_p.iter().map(|&l| (l - max).exp()).sum();
            let log_sum = max + sum_exp.ln();
            total += log_sum;
            for (r, &l) in resp[i].iter_mut().zip(&log_p) {
                *r = (l - log_sum).exp();
            }
        }
        total
    }

    /// One M step: re-estimates weights, means and covariances.
    fn m_step(
        &self,
        data: &Dataset,
        resp: &[Vec<f64>],
        components: &mut [Component],
        d: usize,
    ) {
        let n = data.len() as f64;
        for (j, comp) in components.iter_mut().enumerate() {
            let nj: f64 = resp.iter().map(|r| r[j]).sum::<f64>().max(1e-12);
            comp.weight = nj / n;
            // Mean.
            let mut mean = vec![0.0; d];
            for (row, r) in data.rows().zip(resp) {
                for (m, &x) in mean.iter_mut().zip(row) {
                    *m += r[j] * x;
                }
            }
            for m in &mut mean {
                *m /= nj;
            }
            // Covariance.
            let mut cov = Matrix::zeros(d, d);
            for (row, r) in data.rows().zip(resp) {
                let w = r[j];
                if w == 0.0 {
                    continue;
                }
                for a in 0..d {
                    let da = row[a] - mean[a];
                    match self.covariance {
                        Covariance::Full => {
                            for b in a..d {
                                cov[(a, b)] += w * da * (row[b] - mean[b]);
                            }
                        }
                        Covariance::Diagonal => cov[(a, a)] += w * da * da,
                    }
                }
            }
            for a in 0..d {
                for b in a..d {
                    let v = cov[(a, b)] / nj;
                    cov[(a, b)] = v;
                    cov[(b, a)] = v;
                }
                cov[(a, a)] += self.reg;
            }
            comp.mean = mean;
            comp.cov = cov;
        }
    }

    /// Log density of `x` under the fitted mixture
    /// `log p(x|Θ) = log Σ_j λ_j N(x; μ_j, Σ_j)`.
    pub fn log_density(components: &[Component], x: &[f64]) -> f64 {
        let log_p: Vec<f64> = components
            .iter()
            .map(|c| {
                let ch = Cholesky::new(&c.cov)
                    .expect("covariances of a fitted model are positive definite");
                let log_norm = -0.5
                    * (c.mean.len() as f64 * (2.0 * std::f64::consts::PI).ln()
                        + ch.log_det());
                c.weight.max(1e-300).ln() + log_norm - 0.5 * ch.mahalanobis_sq(x, &c.mean)
            })
            .collect();
        let max = log_p.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        max + log_p.iter().map(|&l| (l - max).exp()).sum::<f64>().ln()
    }
}

impl Clusterer for GaussianMixture {
    fn cluster(&self, data: &Dataset, rng: &mut StdRng) -> Clustering {
        self.fit(data, rng).to_hard()
    }

    fn name(&self) -> &'static str {
        "gmm-em"
    }
}

/// Empirical (regularised) covariance of the full dataset, used as the EM
/// starting covariance for all components.
fn empirical_covariance(data: &Dataset, structure: Covariance, reg: f64) -> Matrix {
    let d = data.dims();
    let n = data.len() as f64;
    let mean = data.mean();
    let mut cov = Matrix::zeros(d, d);
    for row in data.rows() {
        for a in 0..d {
            let da = row[a] - mean[a];
            match structure {
                Covariance::Full => {
                    for b in a..d {
                        cov[(a, b)] += da * (row[b] - mean[b]);
                    }
                }
                Covariance::Diagonal => cov[(a, a)] += da * da,
            }
        }
    }
    for a in 0..d {
        for b in a..d {
            let v = cov[(a, b)] / n;
            cov[(a, b)] = v;
            cov[(b, a)] = v;
        }
        cov[(a, a)] += reg;
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiclust_core::measures::diss::adjusted_rand_index;
    use multiclust_data::synthetic::gaussian_blobs;
    use multiclust_data::seeded_rng;

    #[test]
    fn recovers_separated_gaussians() {
        let mut rng = seeded_rng(31);
        let (data, truth) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![12.0, 0.0]],
            1.0,
            60,
            &mut rng,
        );
        let res = GaussianMixture::new(2).fit(&data, &mut rng);
        let truth_c = Clustering::from_labels(&truth);
        assert!(adjusted_rand_index(&res.to_hard(), &truth_c) > 0.99);
        // Weights roughly balanced.
        for c in &res.components {
            assert!((c.weight - 0.5).abs() < 0.1, "weight {}", c.weight);
        }
    }

    #[test]
    fn log_likelihood_is_monotone_over_refit() {
        // EM guarantees non-decreasing likelihood; test indirectly by
        // comparing a 1-iteration fit against a converged fit with the
        // same seed.
        let mut r1 = seeded_rng(32);
        let mut r2 = seeded_rng(32);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![6.0, 6.0]],
            1.5,
            50,
            &mut seeded_rng(33),
        );
        let short = GaussianMixture::new(2).with_max_iter(1).fit(&data, &mut r1);
        let long = GaussianMixture::new(2).with_max_iter(100).fit(&data, &mut r2);
        assert!(long.log_likelihood >= short.log_likelihood - 1e-9);
        assert!(long.iterations >= short.iterations);
    }

    #[test]
    fn diagonal_covariance_stays_diagonal() {
        let mut rng = seeded_rng(34);
        let (data, _) = gaussian_blobs(
            &[vec![0.0, 0.0], vec![8.0, 8.0]],
            1.0,
            40,
            &mut rng,
        );
        let res = GaussianMixture::new(2)
            .with_covariance(Covariance::Diagonal)
            .fit(&data, &mut rng);
        for c in &res.components {
            assert_eq!(c.cov[(0, 1)], 0.0);
            assert_eq!(c.cov[(1, 0)], 0.0);
        }
    }

    #[test]
    fn responsibilities_are_probabilities() {
        let mut rng = seeded_rng(35);
        let (data, _) = gaussian_blobs(
            &[vec![0.0], vec![5.0], vec![10.0]],
            0.8,
            20,
            &mut rng,
        );
        let res = GaussianMixture::new(3).fit(&data, &mut rng);
        for i in 0..data.len() {
            let r = res.soft.responsibilities(i);
            let s: f64 = r.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn log_density_integrates_sanity() {
        // Density at the mean of a tight component exceeds density far away.
        let mut rng = seeded_rng(36);
        let (data, _) = gaussian_blobs(&[vec![0.0, 0.0]], 1.0, 80, &mut rng);
        let res = GaussianMixture::new(1).fit(&data, &mut rng);
        let at_mean = GaussianMixture::log_density(&res.components, &res.components[0].mean);
        let far = GaussianMixture::log_density(&res.components, &[50.0, 50.0]);
        assert!(at_mean > far + 100.0);
    }

    #[test]
    fn degenerate_duplicate_data_survives_regularisation() {
        let mut rng = seeded_rng(37);
        let data = Dataset::from_rows(&vec![vec![1.0, 1.0]; 10]);
        let res = GaussianMixture::new(2).fit(&data, &mut rng);
        assert!(res.log_likelihood.is_finite());
    }
}
