//! Bounded LRU registry of fitted models.
//!
//! A model is one `fit` result: the solution set plus per-solution
//! cluster centroids (means of the member rows in the training data), so
//! `assign` can label new objects by nearest centroid without refitting
//! — the family-agnostic predictor every paradigm's partition supports.
//!
//! Eviction is least-recently-used over a logical touch counter (no
//! wall-clock), so registry behaviour is a deterministic function of the
//! request sequence.

use std::collections::HashMap;

use multiclust_core::Clustering;
use multiclust_data::Dataset;

/// One registered fit result.
#[derive(Clone, Debug)]
pub struct FittedModel {
    /// Registry name.
    pub name: String,
    /// Family that produced it.
    pub family: String,
    /// Training objects.
    pub n: usize,
    /// Training dimensionality.
    pub d: usize,
    /// Requested cluster count.
    pub k: usize,
    /// RNG seed of the fit.
    pub seed: u64,
    /// The solution set, in the family's deterministic order.
    pub solutions: Vec<Clustering>,
    /// Per-solution, per-label centroid (training-space mean of the
    /// members; noise excluded). Indexed `[solution][label][dim]`.
    pub centroids: Vec<Vec<Vec<f64>>>,
    /// Insertion sequence number (stable `list` order).
    pub seq: u64,
    last_used: u64,
}

impl FittedModel {
    /// Builds a model from a fit: derives the centroids from the
    /// training data and the solution labels.
    pub fn new(
        name: String,
        family: String,
        k: usize,
        seed: u64,
        data: &Dataset,
        solutions: Vec<Clustering>,
    ) -> Self {
        let d = data.dims();
        let centroids = solutions
            .iter()
            .map(|c| {
                let kc = c.num_clusters();
                let mut sums = vec![vec![0.0f64; d]; kc];
                let mut counts = vec![0usize; kc];
                for (i, a) in c.assignments().iter().enumerate() {
                    if let Some(l) = a {
                        counts[*l] += 1;
                        for (s, &x) in sums[*l].iter_mut().zip(data.row(i)) {
                            *s += x;
                        }
                    }
                }
                sums.iter()
                    .zip(&counts)
                    .map(|(sum, &cnt)| {
                        let div = cnt.max(1) as f64;
                        sum.iter().map(|s| s / div).collect()
                    })
                    .collect()
            })
            .collect();
        Self {
            name,
            family,
            n: data.len(),
            d,
            k,
            seed,
            solutions,
            centroids,
            seq: 0,
            last_used: 0,
        }
    }

    /// Nearest-centroid labels for `data` under every solution; `None`
    /// where a solution has no clusters at all (all-noise partitions).
    /// A serial exact scan: bit-identical at any thread count.
    pub fn assign(&self, data: &Dataset) -> Vec<Vec<Option<usize>>> {
        self.centroids
            .iter()
            .map(|centers| {
                data.rows()
                    .map(|row| {
                        let mut best: Option<(usize, f64)> = None;
                        for (l, c) in centers.iter().enumerate() {
                            let d2: f64 = row
                                .iter()
                                .zip(c)
                                .map(|(a, b)| (a - b) * (a - b))
                                .sum();
                            // Strict `<` keeps the lowest label on ties.
                            if best.map_or(true, |(_, bd)| d2 < bd) {
                                best = Some((l, d2));
                            }
                        }
                        best.map(|(l, _)| l)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Bounded LRU map of fitted models.
pub struct ModelRegistry {
    capacity: usize,
    models: HashMap<String, FittedModel>,
    clock: u64,
    seq: u64,
    evictions: u64,
    auto: u64,
}

impl ModelRegistry {
    /// An empty registry holding at most `capacity` models (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            models: HashMap::new(),
            clock: 0,
            seq: 0,
            evictions: 0,
            auto: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registered model count.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Total models evicted by the LRU bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Next auto-assigned model name (`m1`, `m2`, …).
    pub fn auto_name(&mut self) -> String {
        self.auto += 1;
        format!("m{}", self.auto)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts (or replaces) a model, returning the names evicted to
    /// respect the capacity, in eviction order.
    pub fn insert(&mut self, mut model: FittedModel) -> Vec<String> {
        let now = self.tick();
        model.last_used = now;
        model.seq = match self.models.get(&model.name) {
            // Replacing keeps the original slot in `list` order.
            Some(old) => old.seq,
            None => {
                self.seq += 1;
                self.seq
            }
        };
        self.models.insert(model.name.clone(), model);
        let mut evicted = Vec::new();
        while self.models.len() > self.capacity {
            let victim = self
                .models
                .values()
                .min_by_key(|m| m.last_used)
                .map(|m| m.name.clone())
                .expect("registry is over capacity, so non-empty");
            self.models.remove(&victim);
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Looks a model up and marks it recently used.
    pub fn touch(&mut self, name: &str) -> Option<&FittedModel> {
        let now = self.tick();
        let model = self.models.get_mut(name)?;
        model.last_used = now;
        Some(model)
    }

    /// Removes a model; `false` if it was not registered.
    pub fn remove(&mut self, name: &str) -> bool {
        self.models.remove(name).is_some()
    }

    /// All models in insertion order.
    pub fn list(&self) -> Vec<&FittedModel> {
        let mut all: Vec<&FittedModel> = self.models.values().collect();
        all.sort_by_key(|m| m.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(name: &str) -> FittedModel {
        let data = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]]);
        let c = Clustering::from_labels(&[0, 0, 1]);
        FittedModel::new(name.to_string(), "kmeans".into(), 2, 42, &data, vec![c])
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut reg = ModelRegistry::new(2);
        assert!(reg.insert(model("a")).is_empty());
        assert!(reg.insert(model("b")).is_empty());
        // Touch `a` so `b` is now the coldest.
        assert!(reg.touch("a").is_some());
        assert_eq!(reg.insert(model("c")), vec!["b".to_string()]);
        assert_eq!(reg.evictions(), 1);
        let names: Vec<&str> = reg.list().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn replacement_keeps_list_order_and_capacity() {
        let mut reg = ModelRegistry::new(2);
        reg.insert(model("a"));
        reg.insert(model("b"));
        assert!(reg.insert(model("a")).is_empty(), "replacement must not evict");
        let names: Vec<&str> = reg.list().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn centroids_and_assign_round_trip_separated_blobs() {
        let m = model("a");
        assert_eq!(m.centroids[0].len(), 2);
        assert_eq!(m.centroids[0][0], vec![0.5, 0.5]);
        let probe = Dataset::from_rows(&[vec![0.2, 0.2], vec![4.9, 5.1]]);
        let labels = m.assign(&probe);
        assert_eq!(labels, vec![vec![Some(0), Some(1)]]);
    }
}
