//! The `multiclust-serve/v1` wire protocol: one JSON object per line in
//! both directions.
//!
//! Requests carry an `op` (`fit`, `assign`, `compare`, `list`, `evict`,
//! `stats`, `dump`, `shutdown`) plus op-specific fields, and an optional `id`
//! that is echoed verbatim in the response. Responses always carry
//! `schema`, the echoed `id`, and `ok`; failures carry a structured
//! `error: {code, message}` object instead of op output — a malformed
//! request never terminates the connection, let alone the server.
//!
//! Response field order is fixed (the vendored `serde` `Value` object
//! preserves insertion order) and floats print shortest-roundtrip, so a
//! response body is byte-stable for byte-identical requests.

use std::io::{BufRead, ErrorKind};

use serde::Value;

/// Protocol schema identifier, stamped on every response.
pub const SCHEMA: &str = "multiclust-serve/v1";

/// Default cap on one request line, overridable via
/// `MULTICLUST_SERVE_MAX_LINE` (bytes).
pub const DEFAULT_MAX_LINE: usize = 32 * 1024 * 1024;

/// A structured protocol failure: machine-readable code plus a one-line
/// human message. Rendered as the response's `error` object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable code (`bad-json`, `bad-request`,
    /// `unknown-op`, `unknown-model`, `line-too-long`, `io`, `internal`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// A `bad-request` error (shape/validation problems).
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self { code: "bad-request", message: message.into() }
    }
}

/// Where a request's dataset comes from.
#[derive(Clone, Debug)]
pub enum DataSource {
    /// Inline row-major matrix.
    Inline(Vec<Vec<f64>>),
    /// Server-side CSV path.
    Path {
        /// CSV file path, resolved on the server's filesystem.
        path: String,
        /// Whether the first CSV line is a header row.
        header: bool,
    },
}

/// A parsed request, one variant per op.
#[derive(Clone, Debug)]
pub enum Request {
    /// Fit a family and register the solutions as a model.
    Fit {
        /// Registry name for the fitted model (auto-assigned if absent).
        model: Option<String>,
        /// Family name (resolved by the dispatch closure).
        family: String,
        /// The objects to cluster.
        source: DataSource,
        /// Cluster count (default 2).
        k: usize,
        /// RNG seed (default 42).
        seed: u64,
        /// Optional reference labels (`-1` = noise) for the
        /// alternative/orthogonal paradigms.
        given: Option<Vec<Option<usize>>>,
        /// Optional attribute groups for the multi-view paradigm.
        views: Option<Vec<Vec<usize>>>,
    },
    /// Predict labels for new objects against a registered model.
    Assign {
        /// Registered model name.
        model: String,
        /// The objects to label.
        source: DataSource,
    },
    /// Dissimilarity measures between two registered solutions.
    Compare {
        /// First model name.
        a: String,
        /// Second model name.
        b: String,
        /// Solution index within `a` (default 0).
        sa: usize,
        /// Solution index within `b` (default 0).
        sb: usize,
    },
    /// List registered models in insertion order.
    List,
    /// Drop one model from the registry.
    Evict {
        /// Registered model name.
        model: String,
    },
    /// Server statistics (uptime, per-op latency sketches, gauges).
    Stats,
    /// Dump the flight recorder to a server-side file and return its
    /// path — the forensics hook for remote clients.
    Dump,
    /// Stop accepting, drain, flush, exit.
    Shutdown,
}

impl Request {
    /// The op name (span label, stats key).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Fit { .. } => "fit",
            Request::Assign { .. } => "assign",
            Request::Compare { .. } => "compare",
            Request::List => "list",
            Request::Evict { .. } => "evict",
            Request::Stats => "stats",
            Request::Dump => "dump",
            Request::Shutdown => "shutdown",
        }
    }
}

// ---------------------------------------------------------------------
// Value helpers (shared with the server's response builders)
// ---------------------------------------------------------------------

/// Looks up a field in a JSON object value.
pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn field_str(obj: &[(String, Value)], key: &str) -> Result<Option<String>, ProtocolError> {
    match field(obj, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a string, got {other:?}"
        ))),
    }
}

fn field_usize(obj: &[(String, Value)], key: &str) -> Result<Option<usize>, ProtocolError> {
    match field(obj, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as usize)),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn field_u64(obj: &[(String, Value)], key: &str) -> Result<Option<u64>, ProtocolError> {
    match field(obj, key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn field_bool(obj: &[(String, Value)], key: &str) -> Result<bool, ProtocolError> {
    match field(obj, key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(ProtocolError::bad_request(format!(
            "field {key:?} must be a bool, got {other:?}"
        ))),
    }
}

fn number(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Parses the `data`/`path` pair of a request. Ragged or empty inline
/// matrices are rejected here — `Dataset::from_rows` would panic.
fn parse_source(obj: &[(String, Value)]) -> Result<DataSource, ProtocolError> {
    match (field(obj, "data"), field_str(obj, "path")?) {
        (Some(_), Some(_)) => Err(ProtocolError::bad_request(
            "give either inline \"data\" or a \"path\", not both",
        )),
        (None, None) => Err(ProtocolError::bad_request(
            "missing dataset: give inline \"data\" (array of rows) or a \"path\"",
        )),
        (None, Some(path)) => {
            Ok(DataSource::Path { path, header: field_bool(obj, "header")? })
        }
        (Some(Value::Array(rows)), None) => {
            if rows.is_empty() {
                return Err(ProtocolError::bad_request("\"data\" has no rows"));
            }
            let mut out = Vec::with_capacity(rows.len());
            let mut width = None;
            for (i, row) in rows.iter().enumerate() {
                let Value::Array(cells) = row else {
                    return Err(ProtocolError::bad_request(format!(
                        "\"data\" row {i} is not an array"
                    )));
                };
                let mut parsed = Vec::with_capacity(cells.len());
                for (j, cell) in cells.iter().enumerate() {
                    let Some(x) = number(cell) else {
                        return Err(ProtocolError::bad_request(format!(
                            "\"data\" row {i} cell {j} is not a number"
                        )));
                    };
                    parsed.push(x);
                }
                match width {
                    None if parsed.is_empty() => {
                        return Err(ProtocolError::bad_request(format!(
                            "\"data\" row {i} is empty"
                        )));
                    }
                    None => width = Some(parsed.len()),
                    Some(w) if parsed.len() != w => {
                        return Err(ProtocolError::bad_request(format!(
                            "ragged \"data\": row {i} has {} cells, expected {w}",
                            parsed.len()
                        )));
                    }
                    Some(_) => {}
                }
                out.push(parsed);
            }
            Ok(DataSource::Inline(out))
        }
        (Some(other), None) => Err(ProtocolError::bad_request(format!(
            "\"data\" must be an array of rows, got {other:?}"
        ))),
    }
}

fn parse_given(obj: &[(String, Value)]) -> Result<Option<Vec<Option<usize>>>, ProtocolError> {
    match field(obj, "given") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Array(labels)) => {
            let mut out = Vec::with_capacity(labels.len());
            for (i, l) in labels.iter().enumerate() {
                match l {
                    Value::Int(v) if *v >= 0 => out.push(Some(*v as usize)),
                    Value::Int(_) => out.push(None),
                    other => {
                        return Err(ProtocolError::bad_request(format!(
                            "\"given\" label {i} must be an integer, got {other:?}"
                        )));
                    }
                }
            }
            Ok(Some(out))
        }
        Some(other) => Err(ProtocolError::bad_request(format!(
            "\"given\" must be an array of integer labels, got {other:?}"
        ))),
    }
}

fn parse_views(obj: &[(String, Value)]) -> Result<Option<Vec<Vec<usize>>>, ProtocolError> {
    match field(obj, "views") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Array(groups)) => {
            let mut out = Vec::with_capacity(groups.len());
            for (g, group) in groups.iter().enumerate() {
                let Value::Array(dims) = group else {
                    return Err(ProtocolError::bad_request(format!(
                        "\"views\" group {g} is not an array of dimension indices"
                    )));
                };
                let mut parsed = Vec::with_capacity(dims.len());
                for d in dims {
                    match d {
                        Value::Int(v) if *v >= 0 => parsed.push(*v as usize),
                        other => {
                            return Err(ProtocolError::bad_request(format!(
                                "\"views\" group {g} holds a non-index {other:?}"
                            )));
                        }
                    }
                }
                if parsed.is_empty() {
                    return Err(ProtocolError::bad_request(format!(
                        "\"views\" group {g} is empty"
                    )));
                }
                out.push(parsed);
            }
            Ok(Some(out))
        }
        Some(other) => Err(ProtocolError::bad_request(format!(
            "\"views\" must be an array of dimension-index groups, got {other:?}"
        ))),
    }
}

/// Parses one request line. Returns the echoed `id` (Null when absent or
/// unparseable) alongside the request or error, so error responses still
/// correlate.
pub fn parse_request(line: &str) -> (Value, Result<Request, ProtocolError>) {
    let value = match serde_json::parse_value(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                Value::Null,
                Err(ProtocolError { code: "bad-json", message: e.to_string() }),
            );
        }
    };
    let Value::Object(obj) = value else {
        return (
            Value::Null,
            Err(ProtocolError::bad_request("request must be a JSON object")),
        );
    };
    let id = field(&obj, "id").cloned().unwrap_or(Value::Null);
    let parsed = parse_request_fields(&obj);
    (id, parsed)
}

fn parse_request_fields(obj: &[(String, Value)]) -> Result<Request, ProtocolError> {
    let op = field_str(obj, "op")?
        .ok_or_else(|| ProtocolError::bad_request("missing \"op\" field"))?;
    match op.as_str() {
        "fit" => {
            let family = field_str(obj, "family")?.ok_or_else(|| {
                ProtocolError::bad_request("fit needs a \"family\" field")
            })?;
            Ok(Request::Fit {
                model: field_str(obj, "model")?,
                family,
                source: parse_source(obj)?,
                k: field_usize(obj, "k")?.unwrap_or(2),
                seed: field_u64(obj, "seed")?.unwrap_or(42),
                given: parse_given(obj)?,
                views: parse_views(obj)?,
            })
        }
        "assign" => Ok(Request::Assign {
            model: field_str(obj, "model")?.ok_or_else(|| {
                ProtocolError::bad_request("assign needs a \"model\" field")
            })?,
            source: parse_source(obj)?,
        }),
        "compare" => Ok(Request::Compare {
            a: field_str(obj, "a")?.ok_or_else(|| {
                ProtocolError::bad_request("compare needs an \"a\" model field")
            })?,
            b: field_str(obj, "b")?.ok_or_else(|| {
                ProtocolError::bad_request("compare needs a \"b\" model field")
            })?,
            sa: field_usize(obj, "sa")?.unwrap_or(0),
            sb: field_usize(obj, "sb")?.unwrap_or(0),
        }),
        "list" => Ok(Request::List),
        "evict" => Ok(Request::Evict {
            model: field_str(obj, "model")?.ok_or_else(|| {
                ProtocolError::bad_request("evict needs a \"model\" field")
            })?,
        }),
        "stats" => Ok(Request::Stats),
        "dump" => Ok(Request::Dump),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError {
            code: "unknown-op",
            message: format!(
                "unknown op {other:?} (expected fit, assign, compare, list, evict, stats, dump or shutdown)"
            ),
        }),
    }
}

// ---------------------------------------------------------------------
// Bounded line codec
// ---------------------------------------------------------------------

/// Outcome of one bounded line read.
pub enum BoundedLine {
    /// A complete line (newline stripped) within the cap.
    Line(Vec<u8>),
    /// The line exceeded the cap; its bytes were drained up to and
    /// including the newline, so the connection stays usable.
    TooLong,
    /// Clean end of stream.
    Eof,
    /// The stop callback fired while waiting for bytes.
    Stopped,
}

/// Reads one newline-terminated line, capping it at `max` bytes. On a
/// read timeout (`WouldBlock`/`TimedOut`) the `should_stop` callback
/// decides between giving up ([`BoundedLine::Stopped`]) and retrying —
/// that is how handler threads stay joinable through a server shutdown
/// while a client holds its connection open.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<BoundedLine> {
    let mut buf = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if should_stop() {
                    return Ok(BoundedLine::Stopped);
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A trailing unterminated fragment counts as a line so a
            // client that forgets the final newline still gets an answer.
            return Ok(if overflow {
                BoundedLine::TooLong
            } else if buf.is_empty() {
                BoundedLine::Eof
            } else {
                BoundedLine::Line(buf)
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !overflow && buf.len() + pos > max {
                    overflow = true;
                    buf.clear();
                }
                if !overflow {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                return Ok(if overflow { BoundedLine::TooLong } else { BoundedLine::Line(buf) });
            }
            None => {
                let len = chunk.len();
                if !overflow && buf.len() + len > max {
                    overflow = true;
                    buf.clear();
                }
                if !overflow {
                    buf.extend_from_slice(chunk);
                }
                reader.consume(len);
            }
        }
    }
}

/// The configured request-line cap: `MULTICLUST_SERVE_MAX_LINE` in bytes,
/// else [`DEFAULT_MAX_LINE`].
pub fn max_line_bytes() -> usize {
    std::env::var("MULTICLUST_SERVE_MAX_LINE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_MAX_LINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Request {
        let (_, r) = parse_request(line);
        r.expect("request should parse")
    }

    fn parse_err(line: &str) -> ProtocolError {
        let (_, r) = parse_request(line);
        r.expect_err("request should be rejected")
    }

    #[test]
    fn fit_request_round_trips() {
        let r = parse_ok(
            r#"{"id":1,"op":"fit","family":"kmeans","k":3,"seed":7,
               "data":[[1,2],[3,4]],"given":[0,-1],"views":[[0],[1]]}"#,
        );
        let Request::Fit { family, source, k, seed, given, views, model } = r else {
            panic!("not a fit");
        };
        assert_eq!(family, "kmeans");
        assert_eq!(k, 3);
        assert_eq!(seed, 7);
        assert_eq!(model, None);
        assert_eq!(given, Some(vec![Some(0), None]));
        assert_eq!(views, Some(vec![vec![0], vec![1]]));
        let DataSource::Inline(rows) = source else { panic!("not inline") };
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn ragged_data_is_rejected_before_dataset_construction() {
        let e = parse_err(r#"{"op":"fit","family":"kmeans","data":[[1,2],[3]]}"#);
        assert_eq!(e.code, "bad-request");
        assert!(e.message.contains("ragged"), "{}", e.message);
    }

    #[test]
    fn truncated_json_is_bad_json() {
        let e = parse_err(r#"{"op":"fit","family""#);
        assert_eq!(e.code, "bad-json");
    }

    #[test]
    fn unknown_op_is_flagged() {
        let e = parse_err(r#"{"op":"transmogrify"}"#);
        assert_eq!(e.code, "unknown-op");
    }

    #[test]
    fn id_is_recovered_even_from_invalid_requests() {
        let (id, r) = parse_request(r#"{"id":"req-9","op":"nope"}"#);
        assert_eq!(id, serde::Value::String("req-9".to_string()));
        assert!(r.is_err());
    }

    #[test]
    fn bounded_reader_caps_and_drains() {
        let data = format!("{}\nshort\n", "x".repeat(100));
        let mut r = std::io::BufReader::new(data.as_bytes());
        let never = || false;
        match read_line_bounded(&mut r, 10, &never).unwrap() {
            BoundedLine::TooLong => {}
            _ => panic!("expected TooLong"),
        }
        match read_line_bounded(&mut r, 10, &never).unwrap() {
            BoundedLine::Line(l) => assert_eq!(l, b"short"),
            _ => panic!("expected the next line to survive"),
        }
        match read_line_bounded(&mut r, 10, &never).unwrap() {
            BoundedLine::Eof => {}
            _ => panic!("expected EOF"),
        }
    }
}
