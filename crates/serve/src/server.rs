//! The accept/dispatch loop: binds a [`Listen`] address, serves the
//! `multiclust-serve/v1` protocol, and keeps every fitted model in a
//! bounded LRU [`ModelRegistry`].
//!
//! Each connection gets a handler thread with a short read timeout, so a
//! `shutdown` request drains cleanly even while other clients hold their
//! connections open: handlers observe the stop flag on the next timeout
//! and exit, and [`Server::run`] joins them all before returning — no
//! leaked threads. Every request executes under a `serve.<op>` telemetry
//! span, feeding the `multiclust-trace/v1` sink and the `--metrics`
//! stream exactly like a CLI run; independently of the telemetry switch
//! the server keeps its own per-op counters and latency quantile
//! sketches for the `stats` op.

use std::io::{BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use multiclust_core::measures::diss::{
    adjusted_rand_index, jaccard_index, normalized_mutual_information, rand_index,
    variation_of_information,
};
use multiclust_core::Clustering;
use multiclust_data::io::read_csv;
use multiclust_data::Dataset;
use multiclust_telemetry::Sketch;
use serde::Value;

use crate::protocol::{
    self, BoundedLine, DataSource, ProtocolError, Request, SCHEMA,
};
use crate::registry::{FittedModel, ModelRegistry};
use crate::{ChaosConfig, FitDispatch, FitSpec, Listen};

/// Server construction parameters.
pub struct ServerConfig {
    /// Model-registry capacity (LRU bound, min 1).
    pub capacity: usize,
    /// Executes `fit` requests (supplied by the harness layer).
    pub dispatch: FitDispatch,
    /// Deterministic degradation for the load-test harness
    /// (default: disabled).
    pub chaos: ChaosConfig,
}

/// What a completed [`Server::run`] reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerSummary {
    /// Total requests answered (including error responses).
    pub requests: u64,
    /// How many of them were error responses.
    pub errors: u64,
}

#[derive(Default)]
struct Stats {
    requests: std::collections::BTreeMap<String, u64>,
    errors: u64,
    latency_us: std::collections::BTreeMap<String, Sketch>,
    chaos_slowed: u64,
    chaos_dropped: u64,
}

struct Shared {
    dispatch: FitDispatch,
    registry: Mutex<ModelRegistry>,
    stats: Mutex<Stats>,
    stop: AtomicBool,
    start: Instant,
    max_line: usize,
    chaos: ChaosConfig,
    // Global workload-op sequence the chaos knobs count on; `stats` and
    // `shutdown` are exempt so observers and teardown stay reliable.
    chaos_seq: AtomicU64,
    // Connection ids for request correlation: every record a request
    // leaves behind (span fields, flight ring, trace lines) carries the
    // accepting connection's id alongside the request id.
    conn_seq: AtomicU64,
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// A bound, not-yet-running protocol server.
pub struct Server {
    listener: ListenerKind,
    shared: Arc<Shared>,
    unix_path: Option<PathBuf>,
    addr: String,
}

impl Server {
    /// Binds the address and prepares the shared state. The request-line
    /// cap is read from `MULTICLUST_SERVE_MAX_LINE` at bind time.
    pub fn bind(listen: &Listen, config: ServerConfig) -> std::io::Result<Server> {
        let (listener, unix_path, addr) = match listen {
            Listen::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                let bound = l.local_addr()?;
                (ListenerKind::Tcp(l), None, format!("tcp:{bound}"))
            }
            Listen::Unix(p) => {
                // A stale socket file from a dead server blocks the bind;
                // remove it (a live server would still hold the listener).
                let _ = std::fs::remove_file(p);
                let l = UnixListener::bind(p)?;
                (ListenerKind::Unix(l), Some(p.clone()), format!("unix:{}", p.display()))
            }
        };
        let shared = Arc::new(Shared {
            dispatch: config.dispatch,
            registry: Mutex::new(ModelRegistry::new(config.capacity)),
            stats: Mutex::new(Stats::default()),
            stop: AtomicBool::new(false),
            start: Instant::now(),
            max_line: protocol::max_line_bytes(),
            chaos: config.chaos,
            chaos_seq: AtomicU64::new(0),
            conn_seq: AtomicU64::new(0),
        });
        Ok(Server { listener, shared, unix_path, addr })
    }

    /// The bound address in `tcp:host:port` / `unix:path` form — feed it
    /// back to [`Listen::parse`] to connect (port 0 resolves here).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Serves until a `shutdown` request, then joins every handler
    /// thread and removes a Unix socket file if one was bound.
    pub fn run(self) -> std::io::Result<ServerSummary> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.set_nonblocking(true)?,
            ListenerKind::Unix(l) => l.set_nonblocking(true)?,
        }
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.stop.load(Ordering::SeqCst) {
            let conn = match &self.listener {
                ListenerKind::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        s.set_nodelay(true).ok();
                        s.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let reader = s.try_clone()?;
                        Some((boxed_read(reader), boxed_write(s)))
                    }
                    Err(e) if would_block(&e) => None,
                    Err(e) => return Err(e),
                },
                ListenerKind::Unix(l) => match l.accept() {
                    Ok((s, _)) => {
                        s.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let reader = s.try_clone()?;
                        Some((boxed_read(reader), boxed_write(s)))
                    }
                    Err(e) if would_block(&e) => None,
                    Err(e) => return Err(e),
                },
            };
            match conn {
                Some((reader, writer)) => {
                    let shared = Arc::clone(&self.shared);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || handle_connection(&shared, reader, writer))
                            .expect("spawn connection handler"),
                    );
                    handlers.retain(|h| !h.is_finished());
                }
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        if let Some(p) = &self.unix_path {
            let _ = std::fs::remove_file(p);
        }
        let stats = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        Ok(ServerSummary {
            requests: stats.requests.values().sum(),
            errors: stats.errors,
        })
    }
}

fn boxed_read(r: impl Read + Send + 'static) -> Box<dyn Read + Send> {
    Box::new(r)
}

fn boxed_write(w: impl Write + Send + 'static) -> Box<dyn Write + Send> {
    Box::new(w)
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(
    shared: &Shared,
    reader: Box<dyn Read + Send>,
    mut writer: Box<dyn Write + Send>,
) {
    use multiclust_telemetry::flight;
    let mut reader = BufReader::new(reader);
    let stop = || shared.stop.load(Ordering::SeqCst);
    let conn = shared.conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
    loop {
        let line = match protocol::read_line_bounded(&mut reader, shared.max_line, &stop) {
            Ok(BoundedLine::Line(bytes)) => bytes,
            Ok(BoundedLine::TooLong) => {
                let e = ProtocolError {
                    code: "line-too-long",
                    message: format!(
                        "request line exceeds {} bytes (MULTICLUST_SERVE_MAX_LINE)",
                        shared.max_line
                    ),
                };
                record(shared, "invalid", 0, true);
                if write_response(&mut writer, &error_response(&Value::Null, &e)).is_err() {
                    return;
                }
                continue;
            }
            Ok(BoundedLine::Eof) | Ok(BoundedLine::Stopped) | Err(_) => return,
        };
        if line.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        let started = Instant::now();
        let (id, parsed) = match String::from_utf8(line) {
            Ok(text) => protocol::parse_request(&text),
            Err(_) => (
                Value::Null,
                Err(ProtocolError {
                    code: "bad-json",
                    message: "request line is not UTF-8".to_string(),
                }),
            ),
        };
        let op = parsed.as_ref().map_or("invalid", Request::op);
        let shutdown = matches!(parsed, Ok(Request::Shutdown));
        // Correlation context: the echoed request id plus this
        // connection's id tag every span, trace line and flight record
        // made while the request executes — including chaos decisions.
        let req_id = id_text(&id);
        flight::set_request(req_id.as_deref().unwrap_or(""), conn);
        // Chaos fires on workload ops only: `stats` answers the load-test
        // driver's final probe, `dump` is the forensics hook and
        // `shutdown` tears the rig down, so all three must stay reliable
        // even under full degradation.
        let exempt = matches!(
            parsed,
            Ok(Request::Stats) | Ok(Request::Dump) | Ok(Request::Shutdown) | Err(_)
        );
        if !shared.chaos.disabled() && !exempt {
            let seq = shared.chaos_seq.fetch_add(1, Ordering::SeqCst) + 1;
            if shared.chaos.drop_every > 0 && seq % shared.chaos.drop_every == 0 {
                // Close the connection without a response line: the
                // client observes an unexpected EOF mid-request — the
                // transport failure the drivers must survive.
                let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.chaos_dropped += 1;
                *stats.requests.entry(op.to_string()).or_insert(0) += 1;
                stats.errors += 1;
                drop(stats);
                multiclust_telemetry::counter_add("serve.chaos.dropped", 1);
                flight::record_event("serve.chaos.dropped");
                return;
            }
            if shared.chaos.slow_every > 0 && seq % shared.chaos.slow_every == 0 {
                std::thread::sleep(Duration::from_millis(shared.chaos.slow_ms));
                let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.chaos_slowed += 1;
                drop(stats);
                multiclust_telemetry::counter_add("serve.chaos.slowed", 1);
                flight::record_event("serve.chaos.slowed");
            }
        }
        // The span covers parse-to-response execution; it lands in the
        // trace sink and the duration sketches exactly like a CLI phase.
        let response = {
            let _span = multiclust_telemetry::span(&format!("serve.{op}"));
            match parsed {
                Ok(req) => execute(shared, &id, req),
                Err(e) => error_response(&id, &e),
            }
        };
        let micros = started.elapsed().as_micros() as u64;
        let failed = !matches!(
            protocol::field(as_object(&response), "ok"),
            Some(Value::Bool(true))
        );
        record(shared, op, micros, failed);
        // The telemetry span above only exists when telemetry is on; the
        // flight ring is on regardless, so mirror the request into it
        // directly when the span could not.
        if !multiclust_telemetry::enabled() {
            flight::record_span(&format!("serve.{op}"), micros.saturating_mul(1000));
        }
        if failed {
            let code = error_code(&response).unwrap_or("error");
            flight::record_error(&format!("serve.{op}.{code}"), req_id.as_deref());
            // An `internal` failure (a caught family panic) is exactly
            // the moment the flight recorder exists for: dump it now,
            // while the evidence is still in the ring.
            if code == "internal" {
                auto_dump(op, req_id.as_deref());
            }
        }
        flight::clear_request();
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// The request `id` as a correlation string: JSON strings unquoted, any
/// other non-null id in its JSON rendering.
fn id_text(id: &Value) -> Option<String> {
    match id {
        Value::Null => None,
        Value::String(s) => Some(s.clone()),
        other => serde_json::to_string(other).ok(),
    }
}

/// The `error.code` of a failed response, if structured.
fn error_code(response: &Value) -> Option<&str> {
    match protocol::field(as_object(response), "error")? {
        Value::Object(e) => match protocol::field(e, "code")? {
            Value::String(code) => Some(code.as_str()),
            _ => None,
        },
        _ => None,
    }
}

/// Dumps the flight ring after an `internal` error. The stderr line is
/// the machine-readable trail (`scripts/check.sh` and the load-test
/// driver grep it): path, record count, failing op and request id.
fn auto_dump(op: &str, request: Option<&str>) {
    use multiclust_telemetry::flight;
    let path = flight::default_dump_path("serve");
    if let Ok(Some(records)) = flight::dump_to_file(&path) {
        eprintln!(
            "serve: flight dump: {} ({records} records; op {op}; request {})",
            path.display(),
            request.unwrap_or("-"),
        );
    }
}

fn as_object(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Object(fields) => fields,
        _ => &[],
    }
}

fn record(shared: &Shared, op: &str, micros: u64, failed: bool) {
    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    *stats.requests.entry(op.to_string()).or_insert(0) += 1;
    stats.latency_us.entry(op.to_string()).or_default().record(micros);
    if failed {
        stats.errors += 1;
    }
}

fn write_response(writer: &mut dyn Write, response: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(response)
        .unwrap_or_else(|_| format!("{{\"schema\":\"{SCHEMA}\",\"ok\":false}}"));
    writer.write_all(text.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

// ---------------------------------------------------------------------
// Response builders
// ---------------------------------------------------------------------

fn ok_head(id: &Value, op: &str) -> Vec<(String, Value)> {
    vec![
        ("schema".to_string(), Value::String(SCHEMA.to_string())),
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(true)),
        ("op".to_string(), Value::String(op.to_string())),
    ]
}

fn error_response(id: &Value, e: &ProtocolError) -> Value {
    Value::Object(vec![
        ("schema".to_string(), Value::String(SCHEMA.to_string())),
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Value::Bool(false)),
        (
            "error".to_string(),
            Value::Object(vec![
                ("code".to_string(), Value::String(e.code.to_string())),
                ("message".to_string(), Value::String(e.message.clone())),
            ]),
        ),
    ])
}

fn labels_value(assignments: &[Option<usize>]) -> Value {
    Value::Array(
        assignments
            .iter()
            .map(|a| Value::Int(a.map_or(-1, |l| l as i64)))
            .collect(),
    )
}

fn solutions_value(solutions: &[Clustering]) -> Value {
    Value::Array(
        solutions
            .iter()
            .map(|c| labels_value(c.assignments()))
            .collect(),
    )
}

fn strings_value(names: &[String]) -> Value {
    Value::Array(names.iter().map(|n| Value::String(n.clone())).collect())
}

// ---------------------------------------------------------------------
// Op execution
// ---------------------------------------------------------------------

fn execute(shared: &Shared, id: &Value, req: Request) -> Value {
    let result = match req {
        Request::Fit { model, family, source, k, seed, given, views } => {
            op_fit(shared, id, model, family, &source, k, seed, given, views)
        }
        Request::Assign { model, source } => op_assign(shared, id, &model, &source),
        Request::Compare { a, b, sa, sb } => op_compare(shared, id, &a, &b, sa, sb),
        Request::List => Ok(op_list(shared, id)),
        Request::Evict { model } => op_evict(shared, id, &model),
        Request::Stats => Ok(op_stats(shared, id)),
        Request::Dump => op_dump(id),
        Request::Shutdown => Ok(Value::Object(ok_head(id, "shutdown"))),
    };
    result.unwrap_or_else(|e| error_response(id, &e))
}

fn load_source(source: &DataSource) -> Result<Dataset, ProtocolError> {
    match source {
        DataSource::Inline(rows) => Ok(Dataset::from_rows(rows)),
        DataSource::Path { path, header } => read_csv(Path::new(path), *header)
            .map_err(|e| ProtocolError {
                code: "io",
                message: format!("reading {path}: {e}"),
            }),
    }
}

#[allow(clippy::too_many_arguments)]
fn op_fit(
    shared: &Shared,
    id: &Value,
    model: Option<String>,
    family: String,
    source: &DataSource,
    k: usize,
    seed: u64,
    given: Option<Vec<Option<usize>>>,
    views: Option<Vec<Vec<usize>>>,
) -> Result<Value, ProtocolError> {
    let data = load_source(source)?;
    let (n, d) = (data.len(), data.dims());
    if n == 0 || d == 0 {
        return Err(ProtocolError::bad_request("dataset is empty"));
    }
    if k == 0 || k > n {
        return Err(ProtocolError::bad_request(format!(
            "k = {k} out of range for {n} objects"
        )));
    }
    let given = match given {
        Some(labels) if labels.len() != n => {
            return Err(ProtocolError::bad_request(format!(
                "\"given\" has {} labels, dataset has {n} objects",
                labels.len()
            )));
        }
        Some(labels) => Clustering::from_options(labels),
        // Default reference: one all-encompassing cluster, the neutral
        // "no prior structure" input for the alternative paradigms.
        None => Clustering::from_labels(&vec![0usize; n]),
    };
    let view_groups = match views {
        Some(groups) => {
            for (g, group) in groups.iter().enumerate() {
                if let Some(&bad) = group.iter().find(|&&dim| dim >= d) {
                    return Err(ProtocolError::bad_request(format!(
                        "\"views\" group {g} names dimension {bad}, dataset has {d}"
                    )));
                }
            }
            groups
        }
        None => vec![(0..d).collect()],
    };
    let spec = FitSpec { family, data, given, view_groups, k, seed };
    // A panicking family (adversarial input the adapter did not gate)
    // must cost one error response, not the process: same contract as
    // every other malformed request.
    let fitted = match catch_unwind(AssertUnwindSafe(|| (shared.dispatch)(&spec))) {
        Ok(result) => result.map_err(ProtocolError::bad_request)?,
        Err(_) => {
            return Err(ProtocolError {
                code: "internal",
                message: format!("fit of family {:?} panicked", spec.family),
            });
        }
    };
    let mut registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let name = model.unwrap_or_else(|| registry.auto_name());
    let fitted_model = FittedModel::new(
        name.clone(),
        spec.family.clone(),
        k,
        seed,
        &spec.data,
        fitted,
    );
    let solutions = solutions_value(&fitted_model.solutions);
    let evicted = registry.insert(fitted_model);
    let mut fields = ok_head(id, "fit");
    fields.push(("model".to_string(), Value::String(name)));
    fields.push(("family".to_string(), Value::String(spec.family)));
    fields.push(("n".to_string(), Value::Int(n as i64)));
    fields.push(("d".to_string(), Value::Int(d as i64)));
    fields.push(("k".to_string(), Value::Int(k as i64)));
    fields.push(("seed".to_string(), Value::Int(seed as i64)));
    fields.push(("solutions".to_string(), solutions));
    fields.push(("evicted".to_string(), strings_value(&evicted)));
    Ok(Value::Object(fields))
}

fn unknown_model(name: &str) -> ProtocolError {
    ProtocolError {
        code: "unknown-model",
        message: format!("no model {name:?} registered (fit one first, or list what is live)"),
    }
}

fn op_assign(
    shared: &Shared,
    id: &Value,
    model: &str,
    source: &DataSource,
) -> Result<Value, ProtocolError> {
    let data = load_source(source)?;
    let mut registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let m = registry.touch(model).ok_or_else(|| unknown_model(model))?;
    if data.dims() != m.d {
        return Err(ProtocolError::bad_request(format!(
            "dataset has {} dims, model {model:?} was fitted on {}",
            data.dims(),
            m.d
        )));
    }
    let assigned = m.assign(&data);
    let mut fields = ok_head(id, "assign");
    fields.push(("model".to_string(), Value::String(model.to_string())));
    fields.push(("n".to_string(), Value::Int(data.len() as i64)));
    fields.push((
        "solutions".to_string(),
        Value::Array(assigned.iter().map(|s| labels_value(s)).collect()),
    ));
    Ok(Value::Object(fields))
}

fn op_compare(
    shared: &Shared,
    id: &Value,
    a: &str,
    b: &str,
    sa: usize,
    sb: usize,
) -> Result<Value, ProtocolError> {
    let mut registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let (ca, na) = {
        let m = registry.touch(a).ok_or_else(|| unknown_model(a))?;
        let c = m.solutions.get(sa).ok_or_else(|| {
            ProtocolError::bad_request(format!(
                "model {a:?} has {} solutions, no index {sa}",
                m.solutions.len()
            ))
        })?;
        (c.clone(), m.n)
    };
    let (cb, nb) = {
        let m = registry.touch(b).ok_or_else(|| unknown_model(b))?;
        let c = m.solutions.get(sb).ok_or_else(|| {
            ProtocolError::bad_request(format!(
                "model {b:?} has {} solutions, no index {sb}",
                m.solutions.len()
            ))
        })?;
        (c.clone(), m.n)
    };
    if na != nb {
        return Err(ProtocolError::bad_request(format!(
            "models cover different object counts: {a:?} has {na}, {b:?} has {nb}"
        )));
    }
    let mut fields = ok_head(id, "compare");
    fields.push(("a".to_string(), Value::String(a.to_string())));
    fields.push(("b".to_string(), Value::String(b.to_string())));
    fields.push(("sa".to_string(), Value::Int(sa as i64)));
    fields.push(("sb".to_string(), Value::Int(sb as i64)));
    fields.push((
        "measures".to_string(),
        Value::Object(vec![
            ("rand_index".to_string(), Value::Float(rand_index(&ca, &cb))),
            (
                "adjusted_rand_index".to_string(),
                Value::Float(adjusted_rand_index(&ca, &cb)),
            ),
            ("jaccard_index".to_string(), Value::Float(jaccard_index(&ca, &cb))),
            (
                "normalized_mutual_information".to_string(),
                Value::Float(normalized_mutual_information(&ca, &cb)),
            ),
            (
                "variation_of_information".to_string(),
                Value::Float(variation_of_information(&ca, &cb)),
            ),
        ]),
    ));
    Ok(Value::Object(fields))
}

fn op_list(shared: &Shared, id: &Value) -> Value {
    let registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let mut fields = ok_head(id, "list");
    fields.push(("capacity".to_string(), Value::Int(registry.capacity() as i64)));
    fields.push((
        "models".to_string(),
        Value::Array(
            registry
                .list()
                .iter()
                .map(|m| {
                    Value::Object(vec![
                        ("model".to_string(), Value::String(m.name.clone())),
                        ("family".to_string(), Value::String(m.family.clone())),
                        ("n".to_string(), Value::Int(m.n as i64)),
                        ("d".to_string(), Value::Int(m.d as i64)),
                        ("k".to_string(), Value::Int(m.k as i64)),
                        ("seed".to_string(), Value::Int(m.seed as i64)),
                        (
                            "solutions".to_string(),
                            Value::Int(m.solutions.len() as i64),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Value::Object(fields)
}

fn op_evict(shared: &Shared, id: &Value, model: &str) -> Result<Value, ProtocolError> {
    let mut registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    if !registry.remove(model) {
        return Err(unknown_model(model));
    }
    let mut fields = ok_head(id, "evict");
    fields.push(("model".to_string(), Value::String(model.to_string())));
    Ok(Value::Object(fields))
}

/// `dump`: serialize the flight ring to a server-side file and return
/// its path and record count, so a remote client can trigger forensics
/// without shell access to the server host.
fn op_dump(id: &Value) -> Result<Value, ProtocolError> {
    use multiclust_telemetry::flight;
    let path = flight::default_dump_path("serve");
    match flight::dump_to_file(&path) {
        Ok(Some(records)) => {
            let mut fields = ok_head(id, "dump");
            fields.push((
                "path".to_string(),
                Value::String(path.display().to_string()),
            ));
            fields.push(("records".to_string(), Value::Int(records as i64)));
            Ok(Value::Object(fields))
        }
        Ok(None) => Err(ProtocolError::bad_request(
            "flight recorder is disabled (MULTICLUST_FLIGHT=0)",
        )),
        Err(e) => Err(ProtocolError {
            code: "io",
            message: format!("writing flight dump {}: {e}", path.display()),
        }),
    }
}

fn sketch_value(s: &Sketch) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::Int(s.count as i64)),
        ("p50".to_string(), Value::Int(s.p50() as i64)),
        ("p90".to_string(), Value::Int(s.p90() as i64)),
        ("p99".to_string(), Value::Int(s.p99() as i64)),
        ("max".to_string(), Value::Int(s.max as i64)),
    ])
}

fn op_stats(shared: &Shared, id: &Value) -> Value {
    use multiclust_telemetry::alloc;
    let stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    let registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let mut fields = ok_head(id, "stats");
    fields.push((
        "uptime_ms".to_string(),
        Value::Int(shared.start.elapsed().as_millis() as i64),
    ));
    fields.push((
        "requests".to_string(),
        Value::Object(
            stats
                .requests
                .iter()
                .map(|(op, &n)| (op.clone(), Value::Int(n as i64)))
                .collect(),
        ),
    ));
    fields.push(("errors".to_string(), Value::Int(stats.errors as i64)));
    fields.push((
        "latency_us".to_string(),
        Value::Object(
            stats
                .latency_us
                .iter()
                .map(|(op, s)| (op.clone(), sketch_value(s)))
                .collect(),
        ),
    ));
    fields.push(("models".to_string(), Value::Int(registry.len() as i64)));
    fields.push(("capacity".to_string(), Value::Int(registry.capacity() as i64)));
    fields.push(("evictions".to_string(), Value::Int(registry.evictions() as i64)));
    fields.push((
        "chaos".to_string(),
        Value::Object(vec![
            ("config".to_string(), Value::String(shared.chaos.display())),
            ("slowed".to_string(), Value::Int(stats.chaos_slowed as i64)),
            ("dropped".to_string(), Value::Int(stats.chaos_dropped as i64)),
        ]),
    ));
    // Observability health gauges: a client can detect silent telemetry
    // loss (event-cap truncation, a full trace sink) without shell access
    // to the server's stderr.
    fields.push((
        "events_dropped".to_string(),
        Value::Int(multiclust_telemetry::snapshot().dropped_events as i64),
    ));
    fields.push((
        "trace.write_errors".to_string(),
        Value::Int(multiclust_telemetry::trace::trace_write_errors() as i64),
    ));
    fields.push((
        "alloc".to_string(),
        if alloc::alloc_enabled() {
            let t = alloc::alloc_totals();
            Value::Object(vec![
                ("count".to_string(), Value::Int(t.count as i64)),
                ("bytes".to_string(), Value::Int(t.bytes as i64)),
                ("peak".to_string(), Value::Int(t.peak as i64)),
            ])
        } else {
            Value::Null
        },
    ));
    Value::Object(fields)
}
