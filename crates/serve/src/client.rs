//! One-shot protocol client: connect, send request lines in lock-step,
//! collect one response line per request.
//!
//! Lock-step (write one line, read one line) keeps the client deadlock-
//! free without buffer-size assumptions and preserves the request →
//! response pairing the concurrency-determinism tests key on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::Listen;

/// An open protocol connection.
pub struct Connection {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Connection {
    /// Connects to a server address.
    pub fn open(listen: &Listen) -> std::io::Result<Connection> {
        let (reader, writer): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match listen {
            Listen::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true).ok();
                (Box::new(s.try_clone()?), Box::new(s))
            }
            Listen::Unix(path) => {
                let s = UnixStream::connect(path)?;
                (Box::new(s.try_clone()?), Box::new(s))
            }
        };
        Ok(Connection { reader: BufReader::new(reader), writer })
    }

    /// Sends one request line and reads the one response line.
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.trim_end().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

/// Connects, plays `requests` in lock-step, and returns the responses in
/// request order.
pub fn session(listen: &Listen, requests: &[String]) -> std::io::Result<Vec<String>> {
    let mut conn = Connection::open(listen)?;
    let mut responses = Vec::with_capacity(requests.len());
    for req in requests {
        responses.push(conn.roundtrip(req)?);
    }
    Ok(responses)
}

/// One request over a fresh connection.
pub fn roundtrip(listen: &Listen, request: &str) -> std::io::Result<String> {
    Connection::open(listen)?.roundtrip(request)
}
