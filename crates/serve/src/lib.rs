//! Resident clustering service for the `multiclust` workspace.
//!
//! The paper's premise is that one dataset admits many useful clusterings;
//! in production that means clients repeatedly asking for *alternative*
//! views of data that is already resident. This crate turns the
//! fit-from-scratch library into a long-lived process: a line-delimited
//! JSON protocol ([`protocol`], schema `multiclust-serve/v1`) served over
//! a TCP or Unix socket ([`server`]), with fitted solutions kept in a
//! bounded LRU [`registry`] so follow-up `assign`/`compare` requests
//! amortize the fit.
//!
//! The crate is deliberately ignorant of the algorithm families: a
//! [`FitDispatch`] closure (supplied by the harness layer, which knows
//! all eight `AlgorithmFamily`s) executes `fit` requests. That keeps the
//! dependency graph acyclic — the harness's `serve-equivalence` invariant
//! boots this very server in-process and compares its labels against the
//! direct library fit, bit for bit.
//!
//! Determinism contract: a response body is a pure function of the
//! request (plus, for `assign`/`compare`, the registered model it names).
//! Fits run on the deterministic thread pool, so the same request yields
//! byte-identical responses at any `MULTICLUST_THREADS` setting and under
//! any client interleaving. Only `stats` (wall-clock, latency sketches)
//! is exempt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

use std::path::PathBuf;
use std::sync::Arc;

use multiclust_core::Clustering;
use multiclust_data::Dataset;

pub use protocol::{ProtocolError, Request, SCHEMA};
pub use registry::{FittedModel, ModelRegistry};
pub use server::{Server, ServerConfig, ServerSummary};

/// Chaos injection knobs for the load-test harness: deterministic
/// degradation of the request pipeline, counted by a global sequence
/// over workload ops (`stats` and `shutdown` are exempt so observers
/// and clean teardown stay reliable). All-zero means disabled — the
/// default for every production boot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Sleep before executing every `slow_every`-th workload op
    /// (0 = never).
    pub slow_every: u64,
    /// How long a slowed op sleeps, in milliseconds.
    pub slow_ms: u64,
    /// Close the connection without responding on every
    /// `drop_every`-th workload op (0 = never).
    pub drop_every: u64,
}

impl ChaosConfig {
    /// True when no chaos is configured.
    pub fn disabled(&self) -> bool {
        self.slow_every == 0 && self.drop_every == 0
    }

    /// Parses `MULTICLUST_CHAOS` (`slow_every=N,slow_ms=N,drop_every=N`,
    /// any subset, unset keys default to 0 = off).
    pub fn from_env() -> Result<ChaosConfig, String> {
        match std::env::var("MULTICLUST_CHAOS") {
            Err(_) => Ok(ChaosConfig::default()),
            Ok(s) => Self::parse(&s),
        }
    }

    /// Parses the `slow_every=N,slow_ms=N,drop_every=N` form.
    pub fn parse(s: &str) -> Result<ChaosConfig, String> {
        let mut config = ChaosConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!("chaos spec {part:?}: expected key=value (slow_every, slow_ms, drop_every)")
            })?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("chaos key {key:?}: cannot parse {value:?} as a count"))?;
            match key.trim() {
                "slow_every" => config.slow_every = value,
                "slow_ms" => config.slow_ms = value,
                "drop_every" => config.drop_every = value,
                other => {
                    return Err(format!(
                        "unknown chaos key {other:?} (expected slow_every, slow_ms or drop_every)"
                    ))
                }
            }
        }
        Ok(config)
    }

    /// Renders the spec back in its `key=value` form (`off` when disabled).
    pub fn display(&self) -> String {
        if self.disabled() {
            return "off".to_string();
        }
        format!(
            "slow_every={},slow_ms={},drop_every={}",
            self.slow_every, self.slow_ms, self.drop_every
        )
    }
}

/// Everything a `fit` request resolves to before dispatch: the named
/// family plus the exact inputs the harness's `FitInput` carries.
#[derive(Clone, Debug)]
pub struct FitSpec {
    /// Family name (one of the harness registry's eight).
    pub family: String,
    /// The objects.
    pub data: Dataset,
    /// Reference clustering for the alternative/orthogonal paradigms.
    pub given: Clustering,
    /// Attribute groups for the multi-view paradigm.
    pub view_groups: Vec<Vec<usize>>,
    /// Cluster count.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Executes a resolved fit request; the harness supplies the real one
/// over its family registry. `Err` strings surface verbatim as protocol
/// error responses.
pub type FitDispatch =
    Arc<dyn Fn(&FitSpec) -> Result<Vec<Clustering>, String> + Send + Sync>;

/// A parsed `--listen` / `MULTICLUST_LISTEN` address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// `tcp:host:port` or a bare `host:port`.
    Tcp(String),
    /// `unix:/path/to.sock`.
    Unix(PathBuf),
}

impl Listen {
    /// Parses an address: `unix:<path>`, `tcp:<host:port>`, or a bare
    /// `<host:port>`.
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".to_string());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if addr.rsplit_once(':').is_none() {
            return Err(format!(
                "cannot parse listen address {s:?} (expected unix:<path>, tcp:<host:port> or <host:port>)"
            ));
        }
        Ok(Listen::Tcp(addr.to_string()))
    }

    /// Renders the address back in its prefixed form.
    pub fn display(&self) -> String {
        match self {
            Listen::Tcp(a) => format!("tcp:{a}"),
            Listen::Unix(p) => format!("unix:{}", p.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_parse_forms() {
        assert_eq!(ChaosConfig::parse(""), Ok(ChaosConfig::default()));
        assert_eq!(
            ChaosConfig::parse("slow_every=3,slow_ms=40,drop_every=2"),
            Ok(ChaosConfig { slow_every: 3, slow_ms: 40, drop_every: 2 })
        );
        assert_eq!(
            ChaosConfig::parse(" drop_every = 5 "),
            Ok(ChaosConfig { slow_every: 0, slow_ms: 0, drop_every: 5 })
        );
        assert!(ChaosConfig::parse("slow_every").is_err());
        assert!(ChaosConfig::parse("warp_factor=9").is_err());
        assert!(ChaosConfig::parse("slow_ms=fast").is_err());
        assert!(ChaosConfig::default().disabled());
        assert_eq!(ChaosConfig::default().display(), "off");
        assert_eq!(
            ChaosConfig { slow_every: 1, slow_ms: 2, drop_every: 0 }.display(),
            "slow_every=1,slow_ms=2,drop_every=0"
        );
    }

    #[test]
    fn listen_parse_forms() {
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock"),
            Ok(Listen::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:9000"),
            Ok(Listen::Tcp("127.0.0.1:9000".to_string()))
        );
        assert_eq!(
            Listen::parse("127.0.0.1:0"),
            Ok(Listen::Tcp("127.0.0.1:0".to_string()))
        );
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("nonsense").is_err());
    }
}
