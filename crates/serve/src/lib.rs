//! Resident clustering service for the `multiclust` workspace.
//!
//! The paper's premise is that one dataset admits many useful clusterings;
//! in production that means clients repeatedly asking for *alternative*
//! views of data that is already resident. This crate turns the
//! fit-from-scratch library into a long-lived process: a line-delimited
//! JSON protocol ([`protocol`], schema `multiclust-serve/v1`) served over
//! a TCP or Unix socket ([`server`]), with fitted solutions kept in a
//! bounded LRU [`registry`] so follow-up `assign`/`compare` requests
//! amortize the fit.
//!
//! The crate is deliberately ignorant of the algorithm families: a
//! [`FitDispatch`] closure (supplied by the harness layer, which knows
//! all eight `AlgorithmFamily`s) executes `fit` requests. That keeps the
//! dependency graph acyclic — the harness's `serve-equivalence` invariant
//! boots this very server in-process and compares its labels against the
//! direct library fit, bit for bit.
//!
//! Determinism contract: a response body is a pure function of the
//! request (plus, for `assign`/`compare`, the registered model it names).
//! Fits run on the deterministic thread pool, so the same request yields
//! byte-identical responses at any `MULTICLUST_THREADS` setting and under
//! any client interleaving. Only `stats` (wall-clock, latency sketches)
//! is exempt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod registry;
pub mod server;

use std::path::PathBuf;
use std::sync::Arc;

use multiclust_core::Clustering;
use multiclust_data::Dataset;

pub use protocol::{ProtocolError, Request, SCHEMA};
pub use registry::{FittedModel, ModelRegistry};
pub use server::{Server, ServerConfig, ServerSummary};

/// Everything a `fit` request resolves to before dispatch: the named
/// family plus the exact inputs the harness's `FitInput` carries.
#[derive(Clone, Debug)]
pub struct FitSpec {
    /// Family name (one of the harness registry's eight).
    pub family: String,
    /// The objects.
    pub data: Dataset,
    /// Reference clustering for the alternative/orthogonal paradigms.
    pub given: Clustering,
    /// Attribute groups for the multi-view paradigm.
    pub view_groups: Vec<Vec<usize>>,
    /// Cluster count.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Executes a resolved fit request; the harness supplies the real one
/// over its family registry. `Err` strings surface verbatim as protocol
/// error responses.
pub type FitDispatch =
    Arc<dyn Fn(&FitSpec) -> Result<Vec<Clustering>, String> + Send + Sync>;

/// A parsed `--listen` / `MULTICLUST_LISTEN` address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// `tcp:host:port` or a bare `host:port`.
    Tcp(String),
    /// `unix:/path/to.sock`.
    Unix(PathBuf),
}

impl Listen {
    /// Parses an address: `unix:<path>`, `tcp:<host:port>`, or a bare
    /// `<host:port>`.
    pub fn parse(s: &str) -> Result<Listen, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".to_string());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if addr.rsplit_once(':').is_none() {
            return Err(format!(
                "cannot parse listen address {s:?} (expected unix:<path>, tcp:<host:port> or <host:port>)"
            ));
        }
        Ok(Listen::Tcp(addr.to_string()))
    }

    /// Renders the address back in its prefixed form.
    pub fn display(&self) -> String {
        match self {
            Listen::Tcp(a) => format!("tcp:{a}"),
            Listen::Unix(p) => format!("unix:{}", p.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_parse_forms() {
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock"),
            Ok(Listen::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:9000"),
            Ok(Listen::Tcp("127.0.0.1:9000".to_string()))
        );
        assert_eq!(
            Listen::parse("127.0.0.1:0"),
            Ok(Listen::Tcp("127.0.0.1:0".to_string()))
        );
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("nonsense").is_err());
    }
}
