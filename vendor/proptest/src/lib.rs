//! Offline stand-in for `proptest`.
//!
//! Randomized property testing without shrinking: each `proptest!` test
//! runs its body over `ProptestConfig::cases` inputs drawn from the given
//! strategies with a deterministic per-test seed (FNV-1a over the test
//! name), so failures reproduce across runs. Supported strategy surface:
//! integer and float ranges, `prop::collection::{vec, btree_set}` and
//! `.prop_map` — the subset the workspace's property tests use.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (raised by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with message `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// The deterministic generator driving a property test.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test name so each property has a stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Collection size specification: an exact size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec`s of `element` with a size from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy producing `BTreeSet`s of `element` with a target size from
    /// `size` (best effort: duplicate draws are retried a bounded number of
    /// times, mirroring proptest's behaviour for small domains).
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < 10 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "property failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "property failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::TestCaseError::fail(format!(
                "property failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr);) => {};
    (
        @cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($(mut $arg_mut:ident)? $($arg:ident)? in $strat:expr),* $(,)?)
        $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..cfg.cases {
                let result: Result<(), $crate::TestCaseError> = (|| {
                    $(
                        $(let mut $arg_mut = $crate::Strategy::generate(&($strat), &mut rng);)?
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)?
                    )*
                    $body
                    Ok(())
                })();
                if let Err($crate::TestCaseError(msg)) = result {
                    panic!(
                        "{} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
}
