//! Offline stand-in for `serde_json`: text format over the vendored
//! `serde` value model.
//!
//! Floats print through Rust's shortest-roundtrip `Display`, so
//! `to_string` → `from_str` preserves every `f64` bit pattern the
//! workspace serializes (the `float_roundtrip` feature of the real crate
//! is the default here).

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value());
    Ok(out)
}

/// Serializes `value` to indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.serialize_value(), 0);
    Ok(out)
}

/// Parses a typed value out of a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize_value(&value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display is shortest-roundtrip; ensure a decimal point or
        // exponent survives so the token stays a float on re-parse.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len()
                        && (self.bytes[end] & 0xc0) == 0x80
                    {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::custom("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported);
    /// leaves `pos` just past the escape.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // 'u'
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            self.literal("\\u")?;
            let lo = self.hex4()?;
            let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
            char::from_u32(cp).ok_or_else(|| Error::custom("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| Error::custom("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom("invalid number"))
        } else {
            // Integers that overflow i64 fall back to f64 (never produced
            // by this workspace, but keeps the parser total).
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom("invalid number"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Null])),
            ("b".into(), Value::Float(1.5)),
            ("s".into(), Value::String("x\"\\\n✓".into())),
            ("neg".into(), Value::Float(-0.125)),
            ("t".into(), Value::Bool(true)),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v);
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn float_text_roundtrips_bits() {
        for &f in &[0.1, 1.0 / 3.0, 6.02e23, -1e-12, 3.0] {
            let mut s = String::new();
            write_f64(&mut s, f);
            let back = s.parse::<f64>().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn typed_roundtrip_through_derive_free_impls() {
        let data: Vec<Option<usize>> = vec![Some(3), None, Some(0)];
        let json = to_string(&data).unwrap();
        let back: Vec<Option<usize>> = from_str(&json).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![-3.0]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
