//! Offline derive macros for the vendored `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available
//! offline) and emits `Serialize`/`Deserialize` impls for the shapes this
//! workspace uses:
//!
//! * structs with named fields  → JSON object, fields in declaration order
//! * tuple structs              → newtype transparently, otherwise array
//! * fieldless enums            → variant name as a string
//!
//! Generics, data-carrying enum variants and `#[serde(...)]` attributes are
//! deliberately unsupported and fail with a compile error naming the
//! offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Fieldless enum: variant identifiers.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\
                 {pushes} ::serde::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{}::{v} => \"{v}\",", item.name))
                .collect();
            format!(
                "::serde::Value::String(String::from(match self {{ {arms} }}))"
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\
         }}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         ::serde::object_field(fields, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "match v {{\
                     ::serde::Value::Object(fields) => Ok({name} {{ {inits} }}),\
                     _ => Err(::serde::Error::custom(\
                         \"expected object for struct {name}\")),\
                 }}"
            )
        }
        Shape::Tuple(1) => format!(
            "Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
        ),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                })
                .collect();
            format!(
                "match v {{\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({inits})),\
                     _ => Err(::serde::Error::custom(\
                         \"expected {n}-element array for struct {name}\")),\
                 }}",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),"))
                .collect();
            format!(
                "match v.as_str() {{\
                     {arms}\
                     _ => Err(::serde::Error::custom(\
                         \"unknown variant for enum {name}\")),\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn deserialize_value(v: &::serde::Value) \
                 -> Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---- token-level parsing ---------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("derive: expected item name, found {other}"),
    };
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive on `{name}`: generic types are not supported by the vendored serde");
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Struct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item {
                    name,
                    shape: Shape::Tuple(count_tuple_fields(g.stream())),
                }
            }
            other => panic!("derive on `{name}`: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(parse_unit_variants(g.stream())),
            },
            other => panic!("derive on `{name}`: unsupported enum body {other:?}"),
        },
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Advances past `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Bracket)
                {
                    *pos += 1; // [...]
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1; // 'pub'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("derive: expected field name, found {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("derive: expected `:` after `{field}`, found {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket
        // depth 0. Parens/brackets arrive as whole groups, so only `<`/`>`
        // need explicit depth tracking.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(field);
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}

/// Variant names of a fieldless enum body.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let variant = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("derive: expected variant name, found {other}"),
        };
        pos += 1;
        match tokens.get(pos) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Group(_)) => panic!(
                "derive: variant `{variant}` carries data — unsupported by the \
                 vendored serde"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                pos += 1;
                while pos < tokens.len()
                    && !matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    pos += 1;
                }
                pos += 1;
            }
            Some(other) => panic!("derive: unexpected token {other} after variant"),
        }
        variants.push(variant);
    }
    variants
}
