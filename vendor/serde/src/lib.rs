//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a value-model replacement: [`Serialize`] lowers a type to a
//! JSON-like [`Value`] tree and [`Deserialize`] rebuilds it. The derive
//! macros (feature `derive`, from the sibling `serde_derive` stub) cover
//! the shapes this workspace uses — named-field structs, tuple structs and
//! fieldless enums. `serde_json` (also vendored) handles the text format.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation between typed
/// data and text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (covers every integer this workspace serializes).
    Int(i64),
    /// IEEE double.
    Float(f64),
    /// UTF-8 string.
    String(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string content, when this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Error raised by a failed deserialization.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v`, failing with a descriptive [`Error`] on shape mismatch.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a named field in an object's field list (derive helper).
pub fn object_field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom("expected integer")),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        // Only taxonomy cards (whose fields are `&'static str`) round-trip
        // through this impl, and only in tests; the leak is bounded and
        // mirrors the `Box::leak` those tests already perform.
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::custom("expected string")),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple array")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}
