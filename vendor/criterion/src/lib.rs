//! Offline stand-in for `criterion`.
//!
//! Wall-clock micro-benchmark harness with criterion's API shape
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) but a much simpler measurement
//! model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples bounded by `measurement_time`, and the median
//! per-iteration time is printed to stdout. No statistics beyond that, no
//! HTML reports, no baseline comparison.
//!
//! Honors `--bench` in argv (cargo passes it to bench binaries) and treats
//! any other non-flag argument as a substring filter on benchmark names,
//! matching how `cargo bench -- <filter>` behaves.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { full: format!("{}/{}", name.into(), parameter) }
    }

    /// An id with no function name, rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { full: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { full: s }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// Median per-iteration time of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `f`, recording the median per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one timed call to estimate cost and fault in caches.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        // Batch iterations so each sample is long enough to time reliably.
        let per_sample = self.measurement_time.max(Duration::from_millis(1))
            / (self.sample_size as u32);
        let iters_per_sample =
            (per_sample.as_nanos() / estimate.as_nanos().max(1)).clamp(1, 1_000_000) as u32;

        let deadline = Instant::now() + self.measurement_time;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed() / iters_per_sample);
            if Instant::now() > deadline {
                break;
            }
        }
        samples.sort();
        self.result = Some(samples[samples.len() / 2]);
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the simplified measurement model
    /// warms up with a single call inside [`Bencher::iter`].
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as the benchmark `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full);
        if self.criterion.matches(&full) {
            let mut b = Bencher {
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
                result: None,
            };
            f(&mut b);
            report(&full, b.result);
        }
        self
    }

    /// Runs `f` with `input` as the benchmark `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark harness.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo invokes bench binaries with `--bench`; any other non-flag
        // argument is a name filter (as with real criterion).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Applies CLI configuration (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs `f` as a stand-alone benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut b = Bencher {
                sample_size: 100,
                measurement_time: Duration::from_secs(5),
                result: None,
            };
            f(&mut b);
            report(id, b.result);
        }
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

fn report(name: &str, result: Option<Duration>) {
    match result {
        Some(d) => println!("{name:<60} time: {}", format_duration(d)),
        None => println!("{name:<60} (no measurement)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5).measurement_time(Duration::from_millis(20));
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nope".into()) };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
