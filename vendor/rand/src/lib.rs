//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and the [`seq::SliceRandom`]
//! helpers. The generator is xoshiro256** seeded through SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), which is fine
//! because every consumer in this workspace only relies on *seeded
//! determinism*, never on a specific reference stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: `f64` in
    /// `[0, 1)`, full-range integers, fair `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`Range` or `RangeInclusive`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

// Single blanket impls (as in upstream rand) so type inference can unify
// the element type with the surrounding context, e.g. `v[rng.gen_range(0..n)]`.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Scalar types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_in<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Unbiased integer sampling in `[0, bound)` by rejection on the
/// widening-multiply trick (Lemire 2019).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the exclusive bound.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t>::sample_standard(rng);
                (lo + u * (hi - lo)).min(hi)
            }
        }
    )*};
}
uniform_float!(f64, f32);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    ///
    /// Not the upstream ChaCha12 `StdRng` — the stream differs, but all
    /// consumers only require *seeded determinism*.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix_next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix_next(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Random selection and permutation on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all elements when
        /// `amount >= len`).
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Uniform random permutation in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_and_choose_multiple_are_permutations() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let picked: Vec<usize> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
    }
}
