//! Detecting novel text topics given known ones.
//!
//! The tutorial's text-analysis scenario (slide 7): a corpus is already
//! organised into the well-known areas (DB / DM / ML), and the interesting
//! question is which *other* grouping the documents support — e.g. the
//! application domain they talk about. This is the home turf of the
//! conditional information bottleneck (Gondek & Hofmann): cluster the
//! documents so that the word information preserved is information
//! *beyond* what the known areas already explain.
//!
//! Documents are synthesised as term-frequency vectors over a vocabulary
//! whose terms belong to area-specific and domain-specific groups.
//!
//! ```text
//! cargo run --release --example text_topics
//! ```

use multiclust::alternative::ConditionalIb;
use multiclust::core::measures::diss::adjusted_rand_index;
use multiclust::core::Clustering;
use multiclust::data::{seeded_rng, Dataset};
use rand::rngs::StdRng;
use rand::Rng;

const AREAS: [&str; 3] = ["databases", "data mining", "machine learning"];
const DOMAINS: [&str; 3] = ["biology", "finance", "web"];
/// Vocabulary: 5 terms per area followed by 5 terms per domain.
const TERMS_PER_GROUP: usize = 5;

/// Synthesises a corpus: each document draws a known area and a novel
/// domain; its term frequencies concentrate on both groups' vocabulary.
fn corpus(n_docs: usize, rng: &mut StdRng) -> (Dataset, Vec<usize>, Vec<usize>) {
    let vocab = TERMS_PER_GROUP * (AREAS.len() + DOMAINS.len());
    let mut docs = Dataset::with_dims(vocab);
    let mut areas = Vec::with_capacity(n_docs);
    let mut domains = Vec::with_capacity(n_docs);
    let mut row = vec![0.0; vocab];
    for _ in 0..n_docs {
        let area = rng.gen_range(0..AREAS.len());
        let domain = rng.gen_range(0..DOMAINS.len());
        areas.push(area);
        domains.push(domain);
        row.iter_mut().for_each(|x| *x = 0.0);
        // ~63 tokens per document: the known-area vocabulary dominates,
        // domain terms are the weaker (novel) signal, plus uniform noise.
        for _ in 0..35 {
            let t = area * TERMS_PER_GROUP + rng.gen_range(0..TERMS_PER_GROUP);
            row[t] += 1.0;
        }
        for _ in 0..18 {
            let t = (AREAS.len() + domain) * TERMS_PER_GROUP
                + rng.gen_range(0..TERMS_PER_GROUP);
            row[t] += 1.0;
        }
        for _ in 0..10 {
            let t = rng.gen_range(0..vocab);
            row[t] += 1.0;
        }
        docs.push_row(&row);
    }
    (docs, areas, domains)
}

fn main() {
    let mut rng = seeded_rng(31);
    let (docs, areas, domains) = corpus(300, &mut rng);
    let known_areas = Clustering::from_labels(&areas);
    let novel_domains = Clustering::from_labels(&domains);
    println!(
        "corpus: {} documents, {} terms; known areas: {:?}\n",
        docs.len(),
        docs.dims(),
        AREAS
    );

    // Plain IB rediscovers whatever dominates the word statistics.
    let plain = ConditionalIb::new(3, 60.0).fit_with_restarts(&docs, None, 8, &mut rng);
    println!(
        "plain information bottleneck:       ARI vs areas {:+.3}, vs domains {:+.3}",
        adjusted_rand_index(&plain, &known_areas),
        adjusted_rand_index(&plain, &novel_domains)
    );

    // Conditioning on the known areas redirects the preserved information
    // to what the areas do NOT explain — the novel domain topics.
    let conditioned = ConditionalIb::new(3, 60.0).fit_with_restarts(
        &docs,
        Some(&known_areas),
        12,
        &mut rng,
    );
    println!(
        "conditional IB (areas given):       ARI vs areas {:+.3}, vs domains {:+.3}",
        adjusted_rand_index(&conditioned, &known_areas),
        adjusted_rand_index(&conditioned, &novel_domains)
    );

    // Name the discovered topics by their most frequent novel terms.
    println!("\ndiscovered novel topics (dominant domain per cluster):");
    for (c, members) in conditioned.members().iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let mut counts = [0usize; DOMAINS.len()];
        for &d in members {
            counts[domains[d]] += 1;
        }
        let (best, share) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, &c)| (i, c as f64 / members.len() as f64))
            .expect("non-empty");
        println!(
            "  topic {}: {} docs, {:>4.0}% about {}",
            c + 1,
            members.len(),
            share * 100.0,
            DOMAINS[best]
        );
    }
    println!(
        "\nexpected: the conditional run aligns with the novel domains, not\n\
         with the given areas (slide 7's 'detect novel topics')."
    );
}
