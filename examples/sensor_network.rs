//! Sensor surveillance with multiple given sources.
//!
//! The tutorial's multi-source scenario (slides 6, 94): each sensor node
//! reports a temperature-like and a humidity-like measurement group. The
//! two sources are *given* views. This example runs the section-5 tool
//! box:
//!
//! * co-EM bootstraps one consensus clustering across the two sources;
//! * multi-view DBSCAN with union/intersection semantics handles sparse
//!   and unreliable sources;
//! * a random-projection ensemble stabilises clustering of the
//!   concatenated high-dimensional table.
//!
//! ```text
//! cargo run --example sensor_network
//! ```

use multiclust::core::measures::diss::adjusted_rand_index;
use multiclust::core::Clustering;
use multiclust::data::synthetic::gauss;
use multiclust::data::{seeded_rng, Dataset, MultiViewDataset};
use multiclust::multiview::{
    CoEm, MultiViewDbscan, MultiViewMethod, RandomProjectionEnsemble,
};
use rand::Rng;

/// Sensors distributed over three environmental zones; each zone leaves a
/// footprint in *both* sources (temperature and humidity geometry differ,
/// the zoning agrees — the conditional-independence setting of slide 101).
fn sensor_zones(n: usize, seed: u64) -> (MultiViewDataset, Clustering) {
    let mut rng = seeded_rng(seed);
    let temp_bases = [[-8.0, 0.0], [0.0, 8.0], [8.0, -4.0]];
    let humid_bases = [[20.0, 0.0, 0.0], [0.0, 20.0, 0.0], [0.0, 0.0, 20.0]];
    let mut temp = Dataset::with_dims(2);
    let mut humid = Dataset::with_dims(3);
    let mut zones = Vec::with_capacity(n);
    for _ in 0..n {
        let z = rng.gen_range(0..3);
        zones.push(z);
        temp.push_row(&[
            temp_bases[z][0] + gauss(&mut rng),
            temp_bases[z][1] + gauss(&mut rng),
        ]);
        humid.push_row(&[
            humid_bases[z][0] + 1.5 * gauss(&mut rng),
            humid_bases[z][1] + 1.5 * gauss(&mut rng),
            humid_bases[z][2] + 1.5 * gauss(&mut rng),
        ]);
    }
    (
        MultiViewDataset::new(vec![temp, humid]),
        Clustering::from_labels(&zones),
    )
}

fn main() {
    let mut rng = seeded_rng(23);
    let (mv, zones) = sensor_zones(200, 29);

    println!(
        "{} sensors, {} sources ({}+{} measurements)\n",
        mv.len(),
        mv.num_views(),
        mv.view(0).dims(),
        mv.view(1).dims()
    );

    // co-EM: the two sources bootstrap each other towards one consensus
    // zoning (slides 101-103).
    let coem = CoEm::new(3).fit(&mv, &mut rng);
    println!("-- co-EM consensus (k=3) --");
    println!(
        "  agreement trace: {:?}",
        coem.agreement_history
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  consensus ARI vs true zones: {:+.3}",
        adjusted_rand_index(&coem.consensus, &zones)
    );

    // Multi-view DBSCAN on the given sources.
    for (method, label) in [
        (MultiViewMethod::Union, "union (sparse-friendly)"),
        (MultiViewMethod::Intersection, "intersection (noise-robust)"),
    ] {
        let c = MultiViewDbscan::new(vec![2.0, 3.0], 5, method).fit(&mv);
        println!("\n-- multi-view DBSCAN, {label} --");
        println!(
            "  clusters: {}, noise sensors: {}, ARI vs zones: {:+.3}",
            c.sizes().iter().filter(|&&s| s > 0).count(),
            c.num_noise(),
            adjusted_rand_index(&c, &zones)
        );
    }

    // Ensemble over random projections of the concatenated table — the
    // slide-108 route when the sources have been merged into one wide
    // table and the original views are lost.
    let table = mv.concatenated();
    let ens = RandomProjectionEnsemble::new(10, 2, 3, 3).fit(&table, &mut rng);
    println!("\n-- random-projection ensemble on the merged table --");
    println!(
        "  {} members, consensus ARI vs true zones: {:+.3}",
        ens.members.len(),
        adjusted_rand_index(&ens.consensus, &zones)
    );
}
