//! Customer segmentation in subspace projections.
//!
//! The tutorial's running example (slides 8, 14–18): customers look unique
//! across all ten attributes, but group cleanly when only the
//! *professional* or only the *leisure* attributes are considered. This
//! example mines subspace clusters with CLIQUE, removes the redundant
//! projections with OSCLU, and contrasts the result with PROCLUS, which by
//! design returns a single disjoint partition.
//!
//! ```text
//! cargo run --example customer_segmentation
//! ```

use multiclust::core::subspace::SubspaceCluster;
use multiclust::data::synthetic::customer_profiles;
use multiclust::data::seeded_rng;
use multiclust::subspace::{Clique, Osclu, Proclus};

fn describe(cluster: &SubspaceCluster, names: &[String]) -> String {
    let dims: Vec<&str> = cluster.dims().iter().map(|&d| names[d].as_str()).collect();
    format!("{} customers grouped by [{}]", cluster.size(), dims.join(", "))
}

fn main() {
    let mut rng = seeded_rng(7);
    let (planted, _views) = customer_profiles(300, &mut rng);
    let names: Vec<String> = planted
        .dataset
        .dim_names()
        .expect("generator names the attributes")
        .to_vec();

    // Subspace clustering: every valid (objects, attributes) pair.
    let normalized = planted.dataset.min_max_normalized();
    let mined = Clique::new(6, 0.04).fit(&normalized);
    println!(
        "CLIQUE mined {} subspace clusters across {} subspaces (redundancy included)",
        mined.clusters.len(),
        mined.dense_subspaces.len()
    );

    // OSCLU: keep one representative per orthogonal concept.
    let selection = Osclu::new(0.6, 0.5).select_greedy(&mined.clusters);
    println!(
        "\nOSCLU keeps {} clusters in orthogonal concepts:",
        selection.selected.len()
    );
    let mut shown = 0;
    for &idx in &selection.selected {
        let c = &mined.clusters[idx];
        if c.dimensionality() >= 2 {
            println!("  - {}", describe(c, &names));
            shown += 1;
        }
        if shown == 8 {
            break;
        }
    }

    // How do the selected clusters relate to the planted views?
    let in_view = |c: &SubspaceCluster, dims: &[usize]| {
        c.dims().iter().all(|d| dims.contains(d))
    };
    let professional = selection
        .selected
        .iter()
        .filter(|&&i| in_view(&mined.clusters[i], &planted.view_dims[0]))
        .count();
    let leisure = selection
        .selected
        .iter()
        .filter(|&&i| in_view(&mined.clusters[i], &planted.view_dims[1]))
        .count();
    println!(
        "\nselected clusters inside the professional view: {professional}, \
         inside the leisure view: {leisure}"
    );

    // Contrast: projected clustering returns ONE disjoint partition.
    let proclus = Proclus::new(3, 3).fit(&planted.dataset, &mut rng);
    println!(
        "\nPROCLUS (projected clustering, single solution): {} clusters, {} outliers",
        proclus
            .clustering
            .sizes()
            .iter()
            .filter(|&&s| s > 0)
            .count(),
        proclus.clustering.num_noise()
    );
    for (i, dims) in proclus.cluster_dims.iter().enumerate() {
        let dim_names: Vec<&str> = dims.iter().map(|&d| names[d].as_str()).collect();
        println!("  cluster {} uses [{}]", i + 1, dim_names.join(", "));
    }
    println!(
        "\neach customer belongs to exactly one PROCLUS cluster — the second\n\
         view (slide 66's criticism) is structurally unreachable there."
    );
}
