//! Quickstart: one dataset, two equally meaningful clusterings.
//!
//! The slide-26 toy example of the tutorial: four Gaussian blobs on the
//! corners of a square. A 2-means run returns *one* of the two natural
//! partitions and silently hides the other; multiple-clustering methods
//! surface both.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use multiclust::alternative::{Coala, DecKMeans};
use multiclust::base::{Clusterer, KMeans};
use multiclust::core::measures::diss::adjusted_rand_index;
use multiclust::core::Clustering;
use multiclust::data::synthetic::four_blob_square;
use multiclust::data::seeded_rng;

fn main() {
    let mut rng = seeded_rng(42);
    let blobs = four_blob_square(50, 10.0, 0.7, &mut rng);
    let horizontal = Clustering::from_labels(&blobs.horizontal);
    let vertical = Clustering::from_labels(&blobs.vertical);

    // Traditional clustering: one solution, the other view is lost.
    let single = KMeans::new(2).with_restarts(4).cluster(&blobs.dataset, &mut rng);
    println!("-- traditional k-means (one solution) --");
    println!(
        "  ARI vs horizontal split: {:+.3}",
        adjusted_rand_index(&single, &horizontal)
    );
    println!(
        "  ARI vs vertical split:   {:+.3}",
        adjusted_rand_index(&single, &vertical)
    );

    // Simultaneous: Dec-kMeans asks for two decorrelated clusterings.
    let dec = DecKMeans::new(&[2, 2])
        .with_lambda(10.0)
        .fit(&blobs.dataset, &mut rng);
    println!("\n-- Dec-kMeans (two simultaneous solutions) --");
    for (i, sol) in dec.clusterings.iter().enumerate() {
        println!(
            "  solution {}: ARI horiz {:+.3}, ARI vert {:+.3}",
            i + 1,
            adjusted_rand_index(sol, &horizontal),
            adjusted_rand_index(sol, &vertical)
        );
    }
    println!(
        "  dissimilarity between the two solutions: ARI {:+.3}",
        adjusted_rand_index(&dec.clusterings[0], &dec.clusterings[1])
    );

    // Iterative: COALA turns the known solution into constraints.
    let alternative = Coala::new(2, 0.8).fit(&blobs.dataset, &single);
    println!("\n-- COALA (alternative to the k-means solution) --");
    println!(
        "  ARI vs the given solution: {:+.3}  (should be ~0)",
        adjusted_rand_index(&alternative.clustering, &single)
    );
    println!(
        "  ARI vs the *other* split:  {:+.3}  (should be ~1)",
        adjusted_rand_index(
            &alternative.clustering,
            if adjusted_rand_index(&single, &horizontal)
                > adjusted_rand_index(&single, &vertical)
            {
                &vertical
            } else {
                &horizontal
            }
        )
    );
}
