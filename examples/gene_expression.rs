//! Gene-expression analysis: alternatives to a known grouping.
//!
//! The tutorial's first motivating application (slide 5): genes have
//! multiple functional roles, so a single clustering of expression
//! profiles is never the whole story. Given the "known" functional
//! grouping (the one a first analysis would find), three different
//! paradigms each extract the second role structure:
//!
//! * COALA (original space, constraint-driven),
//! * the metric flip of Davidson & Qi (learned transformation),
//! * Cui et al.'s orthogonal projections (iterated PCA removal).
//!
//! ```text
//! cargo run --example gene_expression
//! ```

use multiclust::alternative::Coala;
use multiclust::base::KMeans;
use multiclust::core::measures::diss::adjusted_rand_index;
use multiclust::core::Clustering;
use multiclust::data::synthetic::{planted_views, ViewSpec};
use multiclust::data::seeded_rng;
use multiclust::orthogonal::{MetricFlip, OrthogonalProjectionClustering};

fn main() {
    let mut rng = seeded_rng(11);
    // 240 genes measured under two condition groups; the first role
    // structure is the dominant one (it is what a first analysis finds),
    // the second is real but weaker — the "multiple functional roles" of
    // slide 5.
    let specs = [
        ViewSpec { dims: 4, clusters: 3, separation: 10.0, noise: 0.8 },
        ViewSpec { dims: 4, clusters: 3, separation: 5.0, noise: 0.8 },
    ];
    let planted = planted_views(240, &specs, 0, &mut rng);
    let role_a = Clustering::from_labels(&planted.truths[0]);
    let role_b = Clustering::from_labels(&planted.truths[1]);

    // The "known" clustering: the already-annotated role structure A
    // (slide 30: "generate a single clustering solution — or assume it is
    // given"). The analysis question is what *else* groups the genes.
    let known = role_a.clone();
    let hidden = &role_b;
    println!(
        "given knowledge: role structure A ({} clusters). A plain k-means\n\
         re-run would mostly rediscover it (ARI {:.3}) — the second role\n\
         structure needs alternative-clustering machinery.\n",
        known.num_clusters(),
        adjusted_rand_index(
            &KMeans::new(3).with_restarts(6).fit(&planted.dataset, &mut rng).clustering,
            &known
        )
    );

    let report = |name: &str, alt: &Clustering| {
        println!(
            "{name:<28} ARI vs hidden roles: {:+.3}   ARI vs known: {:+.3}",
            adjusted_rand_index(alt, hidden),
            adjusted_rand_index(alt, &known)
        );
    };

    // 1. COALA — constraints from the known clustering.
    let coala = Coala::new(3, 0.7).fit(&planted.dataset, &known);
    report("COALA (w=0.7)", &coala.clustering);

    // 2. Metric flip — learn, decompose, invert the stretcher, re-cluster.
    let km = KMeans::new(3).with_restarts(6);
    let flip = MetricFlip::new().fit(&planted.dataset, &known, &km, &mut rng);
    report("metric flip (Davidson & Qi)", &flip.clustering);

    // 3. Orthogonal projections — remove the known structure's principal
    //    directions and cluster the residual space.
    let cui = OrthogonalProjectionClustering::new()
        .with_variance_fraction(0.999)
        .with_max_views(3)
        .fit(&planted.dataset, &km, &mut rng);
    if let Some(second) = cui.views.get(1) {
        report("orthogonal projections (Cui)", &second.clustering);
    }
    println!(
        "\nexpected: the transformation methods align with the hidden role\n\
         structure (high first column, low second). COALA recovers it only\n\
         partially here: genes sharing role B often also share role A, so its\n\
         cannot-link constraints forbid part of the hidden grouping — the\n\
         slide-31 point that 100% constraint satisfaction is not meaningful."
    );
}
