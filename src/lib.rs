//! # multiclust
//!
//! A Rust library for **discovering multiple clustering solutions** —
//! grouping objects in different views of the data — implementing the full
//! taxonomy of the SDM 2011 / ICDE 2012 tutorial by Müller, Günnemann,
//! Färber and Seidl.
//!
//! One clustering is rarely the whole story: objects play several roles at
//! once (genes with multiple functions), structure hides in different
//! attribute subsets (customer profession vs. leisure), and data arrives
//! from multiple sources (CT scans and hemograms of the same patients).
//! This umbrella crate re-exports the workspace:
//!
//! * [`linalg`] — dense linear-algebra substrate (eigen, SVD, PCA, Cholesky);
//! * [`data`] — datasets, views and synthetic multi-view generators;
//! * [`core`] — clusterings, quality/dissimilarity measures, constraints,
//!   taxonomy cards;
//! * [`base`] — baseline clusterers (k-means, GMM-EM, DBSCAN,
//!   agglomerative, spectral);
//! * [`alternative`] — multiple clusterings in the original space
//!   (meta clustering, COALA, Dec-kMeans, CAMI, minCEntropy);
//! * [`orthogonal`] — space-transformation methods (Davidson & Qi,
//!   Qi & Davidson, Cui et al.);
//! * [`subspace`] — subspace-projection methods (CLIQUE, SCHISM, SUBCLU,
//!   PROCLUS, ENCLUS, OSCLU, ASCLU, redundancy elimination);
//! * [`multiview`] — multiple given sources (co-EM, multi-view DBSCAN,
//!   consensus ensembles).
//!
//! ## Quickstart
//!
//! ```
//! use multiclust::data::synthetic::four_blob_square;
//! use multiclust::data::seeded_rng;
//! use multiclust::alternative::dec_kmeans::DecKMeans;
//! use multiclust::core::measures::diss::adjusted_rand_index;
//!
//! // Four blobs on a square admit two orthogonal 2-partitions.
//! let mut rng = seeded_rng(5);
//! let blobs = four_blob_square(50, 10.0, 0.8, &mut rng);
//!
//! // Ask Dec-kMeans for two decorrelated clusterings simultaneously.
//! let result = DecKMeans::new(&[2, 2]).with_lambda(4.0).fit(&blobs.dataset, &mut rng);
//! let a = &result.clusterings[0];
//! let b = &result.clusterings[1];
//!
//! // The two solutions disagree with each other…
//! assert!(adjusted_rand_index(a, b) < 0.3);
//! ```

pub use multiclust_alternative as alternative;
pub use multiclust_base as base;
pub use multiclust_bench as bench;
pub use multiclust_core as core;
pub use multiclust_data as data;
pub use multiclust_harness as harness;
pub use multiclust_linalg as linalg;
pub use multiclust_loadtest as loadtest;
pub use multiclust_multiview as multiview;
pub use multiclust_orthogonal as orthogonal;
pub use multiclust_parallel as parallel;
pub use multiclust_serve as serve;
pub use multiclust_subspace as subspace;
pub use multiclust_telemetry as telemetry;

/// One-stop prelude for examples and downstream users.
pub mod prelude {
    pub use multiclust_core::prelude::*;
    pub use multiclust_data::{seeded_rng, Dataset, MultiViewDataset};
}
