//! `multiclust` — command-line front end for the library.
//!
//! Reads numeric CSV tables, runs a selected (multiple-)clustering method
//! and prints the resulting labelling(s) as CSV on stdout (one column per
//! solution, `-1` for noise), so results pipe straight into other tools.
//!
//! ```text
//! multiclust kmeans       --input data.csv --k 3
//! multiclust dbscan       --input data.csv --eps 0.5 --min-pts 5
//! multiclust dec-kmeans   --input data.csv --ks 2,2 --lambda 4
//! multiclust alternative  --input data.csv --given labels.csv --k 2 --method coala
//! multiclust subspace     --input data.csv --xi 6 --tau 0.05 --select osclu
//! multiclust compare      --a labels_a.csv --b labels_b.csv
//! multiclust verify       --golden-dir tests/golden
//! ```
//!
//! Common flags: `--header` (first CSV line is a header), `--seed <u64>`
//! (default 42).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use multiclust::alternative::{Coala, DecKMeans, MinCEntropy};
use multiclust::base::{Dbscan, KMeans};
use multiclust::core::measures::diss::{
    adjusted_rand_index, jaccard_index, normalized_mutual_information, rand_index,
    variation_of_information,
};
use multiclust::core::Clustering;
use multiclust::data::io::read_csv;
use multiclust::data::{seeded_rng, Dataset};
use multiclust::harness::{verify, Fault, VerifyOptions};
use multiclust::orthogonal::{MetricFlip, QiDavidson};
use multiclust::subspace::osclu::size_times_dims;
use multiclust::subspace::redundancy::{rescu_select, statpc_select};
use multiclust::subspace::{Clique, Osclu};
use serde::Value;

const USAGE: &str = "\
multiclust — discovering multiple clustering solutions

usage: multiclust <command> [flags]

commands:
  kmeans       --input <csv> --k <n>
  dbscan       --input <csv> --eps <f> --min-pts <n>
  dec-kmeans   --input <csv> --ks <n,n[,n..]> [--lambda <f>]
  alternative  --input <csv> --given <labels.csv> --k <n>
               [--method coala|mincentropy|metricflip|qidavidson] [--w <f>]
  subspace     --input <csv> --xi <n> --tau <f>
               [--select none|osclu|rescu|statpc] [--beta <f>] [--alpha <f>]
  compare      --a <labels.csv> --b <labels.csv>
  verify       [--family <name>] [--inject <fault>] [--seed <n>]
               [--golden-dir <dir>|none] [--bless]
  bench        [--smoke] [--out <file>] [--seed <n>]
               [--compare <BENCH_*.json>] [--inject-naive]
               [--check-floors <BENCH_*.json>]
  trace        <trace.jsonl> | --collapse <trace.jsonl>
  diagnose     <trace.jsonl> [--json]
  flight       <flight.jsonl>
  trend        [--dir <dir>] [--slo <report.json>]
  serve        [--listen tcp:<host:port>|unix:<path>] [--capacity <n>]
               (default 127.0.0.1:0; env MULTICLUST_LISTEN)
  client       [--connect <addr>] [--request <json> | --script <file>]
               (reads request lines from stdin when neither flag is given;
                env MULTICLUST_LISTEN when --connect is omitted)
  loadtest     <scenario.json> [--boot in-process|binary]
               [--inject <fault>] [--canonical] [--out <file>]
               [--golden <file> [--bless]]
               | --judge <report.json> | --doctor-report <report.json>

common flags: --header            first CSV line is a header row
              --seed <n>          RNG seed (default 42)
              --telemetry[=json]  report spans/counters/convergence traces
                                  on stderr (stdout stays pipeable CSV)
              --trace <file>      stream a multiclust-trace/v1 JSONL trace
                                  of the run to <file> (implies telemetry;
                                  stdout stays byte-identical)
              --metrics <file>    stream periodic multiclust-metrics/v1
                                  JSONL snapshots (counters, quantiles,
                                  allocation gauges) to <file> while the
                                  run executes (implies telemetry);
                                  MULTICLUST_METRICS_INTERVAL_MS sets the
                                  sampling interval (default 200)

environment:  MULTICLUST_ALLOC=1  attribute heap allocations (count/bytes/
                                  peak) to the active span; surfaced by
                                  --telemetry, --trace and --metrics;
                                  stdout stays byte-identical

output: CSV on stdout — one column per solution, label per object,
        -1 for noise; `subspace` prints one cluster per line instead;
        `compare` prints agreement measures; `verify` prints the
        invariant × family matrix and exits non-zero on any violation;
        `bench` prints a distance-kernel benchmark report as JSON
        (timings/progress go to stderr, `--out` also writes a file;
        `--compare` gates against a baseline report and exits non-zero
        on regression; `--check-floors` audits a frozen report against
        the per-family speedup floors instead of running the suite);
        `trace` prints a per-phase time attribution (or
        collapsed flamegraph stacks with --collapse); `diagnose` prints
        convergence findings and exits non-zero on a violated objective
        contract; `flight` summarizes a multiclust-flight/v1 recorder
        dump (record counts, hottest names, last errors with their
        request ids); `trend` tabulates all BENCH_*.json trajectories
        plus per-op latency quantiles from LOADTEST_*.json reports
        (--slo gates a candidate report's p99 against those baselines
        and exits non-zero on a regression);
        `serve` prints one `{\"type\":\"ready\",...}` line with the bound
        address, then answers multiclust-serve/v1 request lines (fit/
        assign/compare/list/evict/stats/dump — `dump` writes the flight
        recorder to a server-side file) until a shutdown request;
        `client` prints one response line per request; `loadtest` runs a
        multiclust-loadtest/v1 scenario against the resident service and
        prints a multiclust-loadtest-report/v1 verdict on stdout (the
        human summary goes to stderr; exit code mirrors the verdict;
        --canonical nulls the wall-clock sections so the bytes replay
        identically across MULTICLUST_THREADS; --judge re-rules a stored
        report and --doctor-report proves a corrupted one fails).
";

fn main() -> ExitCode {
    // Allocation accounting must be live before the command allocates
    // anything worth attributing (no-op unless MULTICLUST_ALLOC=1).
    multiclust::telemetry::alloc::init_from_env();
    let result = run(std::env::args().skip(1).collect());
    // Finalize the trace sink (counters, end line) whether the command
    // succeeded or not; no-op when no sink is open. The metrics sampler
    // stops afterwards so its final snapshot sees the flushed counters.
    multiclust::telemetry::trace::flush_trace();
    multiclust::telemetry::metrics::stop_metrics();
    match result {
        Ok(Outcome { output, passed }) => {
            print!("{output}");
            if passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            // Usage errors (bad flags, unknown commands) get the full
            // usage text; runtime errors (unreadable input, corrupt
            // trace) stay one clean line so the cause isn't buried.
            if e.usage {
                eprintln!("error: {}\n\n{USAGE}", e.message);
            } else {
                eprintln!("error: {}", e.message);
            }
            ExitCode::FAILURE
        }
    }
}

/// A command-line failure: the message plus whether it is the user's
/// flag spelling (print usage) or a runtime problem with their files
/// (don't bury the cause under the usage dump).
struct CliError {
    message: String,
    usage: bool,
}

impl CliError {
    /// A runtime error: printed as a single clean line, no usage text.
    fn plain(message: String) -> Self {
        Self { message, usage: false }
    }
}

/// Bare-`String` errors are flag/command mistakes and keep the usage dump.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self { message, usage: true }
    }
}

/// What a command produced: stdout text plus whether it succeeded.
///
/// `verify` can run to completion and still *fail* (violations found);
/// that is not a usage error, so the report goes to stdout and only the
/// exit code turns red.
struct Outcome {
    output: String,
    passed: bool,
}

impl Outcome {
    fn ok(output: String) -> Self {
        Self { output, passed: true }
    }
}

/// Parsed flag map: `--key value` pairs plus boolean `--header`, plus
/// positional arguments (only `trace` and `diagnose` accept them).
struct Flags {
    map: HashMap<String, String>,
    positional: Vec<String>,
}

/// Flags taking no value: bare `--flag` means "true".
const BOOLEAN_FLAGS: &[&str] =
    &["header", "telemetry", "bless", "smoke", "json", "inject-naive", "canonical"];

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                positional.push(args[i].clone());
                i += 1;
                continue;
            };
            if let Some((key, value)) = key.split_once('=') {
                // `--key=value` form.
                map.insert(key.to_string(), value.to_string());
                i += 1;
            } else if BOOLEAN_FLAGS.contains(&key) {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                map.insert(key.to_string(), value.clone());
                i += 2;
            }
        }
        Ok(Self { map, positional })
    }

    fn get(&self, key: &str) -> Option<&String> {
        self.map.get(key)
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        self.map
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, String> {
        self.str(key)?
            .parse()
            .map_err(|_| format!("flag --{key}: cannot parse {:?}", self.str(key).unwrap()))
    }

    fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse {v:?}")),
        }
    }

    fn bool(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

/// How `--telemetry` wants its stderr report rendered.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TelemetryMode {
    Text,
    Json,
}

fn telemetry_mode(flags: &Flags) -> Result<Option<TelemetryMode>, String> {
    match flags.get("telemetry").map(String::as_str) {
        None => Ok(None),
        Some("true") | Some("text") => Ok(Some(TelemetryMode::Text)),
        Some("json") => Ok(Some(TelemetryMode::Json)),
        Some(other) => Err(format!(
            "flag --telemetry: unknown mode {other:?} (expected nothing, `text` or `json`)"
        )),
    }
}

fn run(args: Vec<String>) -> Result<Outcome, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::from("no command given".to_string()));
    };
    let flags = Flags::parse(rest)?;
    if !matches!(command.as_str(), "trace" | "diagnose" | "flight" | "loadtest") {
        if let Some(stray) = flags.positional.first() {
            return Err(format!("unexpected argument {stray:?} (expected a --flag)").into());
        }
    }
    let telemetry = telemetry_mode(&flags)?;
    if telemetry.is_some() {
        multiclust::telemetry::set_enabled(true);
    }
    if let Some(path) = flags.get("trace") {
        setup_trace(path, command, &flags)?;
    }
    if let Some(path) = flags.get("metrics") {
        setup_metrics(path, &flags)?;
    }
    let outcome = match command.as_str() {
        "kmeans" => cmd_kmeans(&flags).map(Outcome::ok).map_err(CliError::from),
        "dbscan" => cmd_dbscan(&flags).map(Outcome::ok).map_err(CliError::from),
        "dec-kmeans" => cmd_dec_kmeans(&flags).map(Outcome::ok).map_err(CliError::from),
        "alternative" => cmd_alternative(&flags).map(Outcome::ok).map_err(CliError::from),
        "subspace" => cmd_subspace(&flags).map(Outcome::ok).map_err(CliError::from),
        "compare" => cmd_compare(&flags).map(Outcome::ok).map_err(CliError::from),
        "verify" => cmd_verify(&flags).map_err(CliError::from),
        "bench" => cmd_bench(&flags).map_err(CliError::from),
        "trace" => cmd_trace(&flags).map(Outcome::ok),
        "diagnose" => cmd_diagnose(&flags),
        "flight" => cmd_flight(&flags),
        "trend" => cmd_trend(&flags),
        "serve" => cmd_serve(&flags),
        "client" => cmd_client(&flags),
        "loadtest" => cmd_loadtest(&flags),
        "help" | "--help" | "-h" => Ok(Outcome::ok(USAGE.to_string())),
        other => Err(format!("unknown command {other:?}").into()),
    }?;
    // Telemetry goes to stderr so stdout CSV stays byte-identical to a run
    // without the flag and keeps piping cleanly.
    match telemetry {
        Some(TelemetryMode::Json) => {
            eprintln!("{}", multiclust::telemetry::snapshot().to_json());
        }
        Some(TelemetryMode::Text) => {
            eprint!("{}", multiclust::telemetry::snapshot().to_text());
        }
        None => {}
    }
    Ok(outcome)
}

/// Opens the `--trace` sink and stamps the run metadata line: command,
/// seed, thread count, kernel mode. Dataset shape follows from
/// [`load_data`] once the input is read.
fn setup_trace(path: &str, command: &str, flags: &Flags) -> Result<(), String> {
    use multiclust::telemetry::trace;
    trace::set_trace_path(Some(Path::new(path)))
        .map_err(|e| format!("flag --trace: cannot open {path}: {e}"))?;
    multiclust::telemetry::set_enabled(true);
    let kernel_mode = match multiclust::linalg::kernels::kernel_mode() {
        multiclust::linalg::kernels::KernelMode::Engine => "engine",
        multiclust::linalg::kernels::KernelMode::Blocked => "blocked",
        multiclust::linalg::kernels::KernelMode::Naive => "naive",
    };
    trace::trace_meta(&[
        ("command", Value::String(command.to_string())),
        ("seed", Value::Int(flags.parsed_or("seed", 42i64)?)),
        ("threads", Value::Int(multiclust::parallel::current_threads() as i64)),
        ("kernel_mode", Value::String(kernel_mode.to_string())),
    ]);
    Ok(())
}

/// Opens the `--metrics` snapshot stream. Implies telemetry (there is
/// nothing to sample otherwise); stdout stays byte-identical because
/// snapshots go to their own file from the sampler thread.
fn setup_metrics(path: &str, flags: &Flags) -> Result<(), String> {
    use multiclust::telemetry::metrics;
    let interval_ms: u64 = match std::env::var("MULTICLUST_METRICS_INTERVAL_MS") {
        Ok(v) => v.parse().map_err(|_| {
            format!("MULTICLUST_METRICS_INTERVAL_MS: cannot parse {v:?} as milliseconds")
        })?,
        Err(_) => flags.parsed_or("metrics-interval-ms", 200u64)?,
    };
    metrics::start_metrics(
        Path::new(path),
        std::time::Duration::from_millis(interval_ms.max(1)),
    )
    .map_err(|e| format!("flag --metrics: cannot open {path}: {e}"))?;
    multiclust::telemetry::set_enabled(true);
    Ok(())
}

fn load_data(flags: &Flags) -> Result<Dataset, String> {
    let path = flags.str("input")?;
    let data = read_csv(Path::new(path), flags.bool("header"))
        .map_err(|e| format!("reading {path}: {e}"))?;
    // Dataset shape into the run metadata (no-op without a sink).
    multiclust::telemetry::trace::trace_meta(&[
        ("dataset_n", Value::Int(data.len() as i64)),
        ("dataset_d", Value::Int(data.dims() as i64)),
    ]);
    Ok(data)
}

/// Loads a single-column integer label file into a `Clustering`
/// (`-1` = noise).
fn load_labels(path: &str) -> Result<Clustering, String> {
    let ds = read_csv(Path::new(path), false).map_err(|e| format!("reading {path}: {e}"))?;
    if ds.dims() != 1 {
        return Err(format!("label file {path} must have exactly one column"));
    }
    let assignments: Vec<Option<usize>> = ds
        .rows()
        .map(|r| {
            let v = r[0];
            if v < 0.0 {
                None
            } else {
                Some(v as usize)
            }
        })
        .collect();
    Ok(Clustering::from_options(assignments))
}

/// Renders solutions as CSV: one column per solution, `-1` for noise.
fn render_solutions(solutions: &[&Clustering]) -> String {
    let n = solutions.first().map_or(0, |s| s.len());
    let mut out = String::new();
    for i in 0..n {
        for (c, s) in solutions.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            match s.assignment(i) {
                Some(l) => out.push_str(&l.to_string()),
                None => out.push_str("-1"),
            }
        }
        out.push('\n');
    }
    out
}

/// Rejects cluster counts the fitters would panic on.
fn check_k(k: usize, n: usize) -> Result<(), String> {
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    if k > n {
        return Err(format!("--k is {k} but the input has only {n} objects"));
    }
    Ok(())
}

fn cmd_kmeans(flags: &Flags) -> Result<String, String> {
    let data = load_data(flags)?;
    let k: usize = flags.parsed("k")?;
    check_k(k, data.len())?;
    let mut rng = seeded_rng(flags.parsed_or("seed", 42u64)?);
    let res = KMeans::new(k).with_restarts(4).fit(&data, &mut rng);
    Ok(render_solutions(&[&res.clustering]))
}

fn cmd_dbscan(flags: &Flags) -> Result<String, String> {
    let data = load_data(flags)?;
    let eps: f64 = flags.parsed("eps")?;
    let min_pts: usize = flags.parsed("min-pts")?;
    let c = Dbscan::new(eps, min_pts).fit(&data);
    Ok(render_solutions(&[&c]))
}

fn cmd_dec_kmeans(flags: &Flags) -> Result<String, String> {
    let data = load_data(flags)?;
    let ks: Vec<usize> = flags
        .str("ks")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad k {s:?} in --ks")))
        .collect::<Result<_, _>>()?;
    if ks.len() < 2 {
        return Err("--ks needs at least two comma-separated cluster counts".into());
    }
    for &k in &ks {
        check_k(k, data.len())?;
    }
    let lambda: f64 = flags.parsed_or("lambda", 1.0)?;
    if lambda < 0.0 {
        return Err("--lambda must be non-negative".into());
    }
    let mut rng = seeded_rng(flags.parsed_or("seed", 42u64)?);
    let res = DecKMeans::new(&ks).with_lambda(lambda).fit(&data, &mut rng);
    let refs: Vec<&Clustering> = res.clusterings.iter().collect();
    Ok(render_solutions(&refs))
}

fn cmd_alternative(flags: &Flags) -> Result<String, String> {
    let data = load_data(flags)?;
    let given = load_labels(flags.str("given")?)?;
    if given.len() != data.len() {
        return Err(format!(
            "label file has {} rows, data has {}",
            given.len(),
            data.len()
        ));
    }
    let k: usize = flags.parsed("k")?;
    check_k(k, data.len())?;
    let mut rng = seeded_rng(flags.parsed_or("seed", 42u64)?);
    let method = flags.parsed_or("method", "coala".to_string())?;
    let alternative = match method.as_str() {
        "coala" => {
            let w: f64 = flags.parsed_or("w", 1.0)?;
            if w <= 0.0 {
                return Err("--w must be positive".into());
            }
            Coala::new(k, w).fit(&data, &given).clustering
        }
        "mincentropy" => {
            let w: f64 = flags.parsed_or("w", 2.0)?;
            MinCEntropy::new(k, w).fit(&data, &[&given], &mut rng)
        }
        "metricflip" => {
            let km = KMeans::new(k).with_restarts(4);
            MetricFlip::new().fit(&data, &given, &km, &mut rng).clustering
        }
        "qidavidson" => {
            let km = KMeans::new(k).with_restarts(4);
            QiDavidson::new().fit(&data, &given, &km, &mut rng).clustering
        }
        other => return Err(format!("unknown alternative method {other:?}")),
    };
    Ok(render_solutions(&[&given, &alternative]))
}

fn cmd_subspace(flags: &Flags) -> Result<String, String> {
    let data = load_data(flags)?.min_max_normalized();
    let xi: u32 = flags.parsed("xi")?;
    let tau: f64 = flags.parsed("tau")?;
    let mined = Clique::new(xi, tau).fit(&data);
    let select = flags.parsed_or("select", "osclu".to_string())?;
    let kept: Vec<usize> = match select.as_str() {
        "none" => (0..mined.clusters.len()).collect(),
        "osclu" => {
            let beta: f64 = flags.parsed_or("beta", 0.75)?;
            let alpha: f64 = flags.parsed_or("alpha", 0.5)?;
            Osclu::new(beta, alpha).select_greedy(&mined.clusters).selected
        }
        "rescu" => rescu_select(&mined.clusters, size_times_dims, 0.9),
        "statpc" => statpc_select(&mined.clusters, data.len(), 0.01),
        other => return Err(format!("unknown selection {other:?}")),
    };
    let mut out = String::new();
    out.push_str("# cluster_id, dims, objects\n");
    for (row, &idx) in kept.iter().enumerate() {
        let c = &mined.clusters[idx];
        out.push_str(&format!(
            "{},\"{}\",\"{}\"\n",
            row,
            c.dims()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
            c.objects()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    Ok(out)
}

fn cmd_verify(flags: &Flags) -> Result<Outcome, String> {
    let fault = match flags.get("inject") {
        None => None,
        Some(name) => {
            Some(Fault::parse(name).map_err(|e| format!("flag --inject: {e}"))?)
        }
    };
    // `--golden-dir none` skips the fixture layer, e.g. when probing a
    // single family or an injected fault away from the repo checkout.
    let golden_dir = match flags.get("golden-dir").map(String::as_str) {
        Some("none") => None,
        Some(dir) => Some(PathBuf::from(dir)),
        None => Some(PathBuf::from("tests/golden")),
    };
    let bless = flags.bool("bless")
        || std::env::var("MULTICLUST_BLESS").map_or(false, |v| v == "1");
    let opts = VerifyOptions {
        seed: flags.parsed_or("seed", 42u64)?,
        family: flags.get("family").cloned(),
        fault,
        golden_dir,
        bless,
    };
    let report = verify(&opts)?;
    Ok(Outcome { output: report.render_text(), passed: report.passed() })
}

fn cmd_bench(flags: &Flags) -> Result<Outcome, String> {
    // `--check-floors <file>` audits a frozen checked-in report against the
    // per-family speedup floors without re-measuring anything: the numbers
    // are in the file, so the verdict is deterministic on any machine.
    if let Some(path) = flags.get("check-floors") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("flag --check-floors: reading {path}: {e}"))?;
        let frozen = multiclust::bench::report::BenchReport::from_json(&text)
            .map_err(|e| format!("flag --check-floors: {path}: {e}"))?;
        let verdict = multiclust::bench::compare::check_floors(
            &frozen,
            multiclust::bench::compare::FAMILY_FLOORS,
        );
        let passed = verdict.passed();
        return Ok(Outcome { output: verdict.text, passed });
    }
    let smoke = flags.bool("smoke");
    let seed = flags.parsed_or("seed", 42u64)?;
    let report =
        multiclust::bench::perf::run_suite_opts(smoke, seed, flags.bool("inject-naive"));
    // The aligned table goes to stderr with the progress lines; stdout is
    // the JSON contract (`BenchReport::from_json` parses it back).
    eprint!("{}", report.render_text());
    let json = format!("{}\n", report.to_json());
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    }
    // The regression gate: delta table to stderr, exit code carries the
    // verdict, stdout stays the parseable report JSON.
    let mut passed = true;
    if let Some(path) = flags.get("compare") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("flag --compare: reading {path}: {e}"))?;
        let baseline = multiclust::bench::report::BenchReport::from_json(&text)
            .map_err(|e| format!("flag --compare: {path}: {e}"))?;
        let noise = flags.parsed_or("noise", multiclust::bench::compare::DEFAULT_NOISE)?;
        let comparison = multiclust::bench::compare::compare(&report, &baseline, noise);
        eprint!("{}", comparison.text);
        passed = comparison.passed();
    }
    Ok(Outcome { output: json, passed })
}

fn cmd_trace(flags: &Flags) -> Result<String, CliError> {
    use multiclust::telemetry::trace;
    let (path, collapse) = match flags.get("collapse") {
        Some(p) => (p.as_str(), true),
        None => {
            let p = flags.positional.first().ok_or_else(|| {
                "trace needs a <trace.jsonl> argument (or --collapse <file>)".to_string()
            })?;
            (p.as_str(), false)
        }
    };
    // A trace file that won't open or parse is a data problem, not a
    // usage mistake: report the named line cleanly, skip the usage dump.
    let parsed = trace::read_trace(Path::new(path))
        .map_err(|e| CliError::plain(format!("trace {path}: {e}")))?;
    if collapse {
        Ok(trace::collapse_spans(&parsed))
    } else {
        let mut out = format!(
            "trace {path}: {} lines, {} span completions, {} events{}\n",
            parsed.lines,
            parsed.spans.len(),
            parsed.events.len(),
            if parsed.ended { "" } else { " (NO end line — run did not flush)" }
        );
        out.push_str(&trace::phase_summary(&parsed));
        Ok(out)
    }
}

fn cmd_diagnose(flags: &Flags) -> Result<Outcome, CliError> {
    use multiclust::telemetry::{diagnose, trace};
    let path = flags
        .positional
        .first()
        .ok_or_else(|| "diagnose needs a <trace.jsonl> argument".to_string())?;
    // Truncated or corrupt traces (a crashed or still-running producer)
    // are expected inputs here: fail with the offending line number, not
    // a panic or a usage dump.
    let parsed = trace::read_trace(Path::new(path))
        .map_err(|e| CliError::plain(format!("diagnose {path}: {e}")))?;
    let report = diagnose::analyze(&parsed, &diagnose::DiagnoseOptions::default());
    let output = if flags.bool("json") {
        format!("{}\n", report.to_json())
    } else {
        report.render_text()
    };
    Ok(Outcome { output, passed: !report.has_errors() })
}

/// Reads a flight-recorder dump and prints its human summary: record
/// counts by kind, the hottest names, and the last errors with their
/// correlated request ids.
fn cmd_flight(flags: &Flags) -> Result<Outcome, CliError> {
    use multiclust::telemetry::flight;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| "flight needs a <flight.jsonl> argument".to_string())?;
    // A dump that won't parse is a data problem, not a usage mistake.
    let parsed = flight::read_flight(Path::new(path))
        .map_err(|e| CliError::plain(format!("flight {path}: {e}")))?;
    Ok(Outcome::ok(flight::summary(&parsed)))
}

/// Sorted `<PREFIX>_*.json` paths in `dir`, with the prefix stripped off
/// the file stem as the report label.
fn trend_inputs(dir: &str, prefix: &str) -> Result<Vec<(String, PathBuf)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let label = p
                .file_stem()
                .and_then(|n| n.to_str())
                .unwrap_or("?")
                .trim_start_matches(prefix)
                .to_string();
            (label, p)
        })
        .collect())
}

fn load_loadtest_reports(
    inputs: &[(String, PathBuf)],
) -> Result<Vec<(String, multiclust::loadtest::ParsedReport)>, String> {
    let mut reports = Vec::with_capacity(inputs.len());
    for (label, p) in inputs {
        let text = std::fs::read_to_string(p)
            .map_err(|e| format!("reading {}: {e}", p.display()))?;
        let report = multiclust::loadtest::report::parse(&text)
            .map_err(|e| format!("{}: {e}", p.display()))?;
        reports.push((label.clone(), report));
    }
    Ok(reports)
}

/// Tabulates every checked-in trajectory: kernel throughput across
/// `BENCH_*.json` reports and per-op latency quantiles across
/// `LOADTEST_*.json` reports. `--slo <report.json>` additionally gates
/// the named report's p99s against the LOADTEST baselines and carries
/// the verdict in the exit code.
fn cmd_trend(flags: &Flags) -> Result<Outcome, CliError> {
    let dir = flags.get("dir").map_or(".", String::as_str);
    let bench_inputs = trend_inputs(dir, "BENCH_").map_err(CliError::plain)?;
    let loadtest_inputs = trend_inputs(dir, "LOADTEST_").map_err(CliError::plain)?;
    if bench_inputs.is_empty() && loadtest_inputs.is_empty() {
        return Err(CliError::plain(format!(
            "no BENCH_*.json or LOADTEST_*.json files found in {dir}"
        )));
    }
    let mut out = String::new();
    if !bench_inputs.is_empty() {
        let mut reports = Vec::new();
        for (label, p) in &bench_inputs {
            let text = std::fs::read_to_string(p)
                .map_err(|e| CliError::plain(format!("reading {}: {e}", p.display())))?;
            let report = multiclust::bench::report::BenchReport::from_json(&text)
                .map_err(|e| CliError::plain(format!("{}: {e}", p.display())))?;
            reports.push((label.clone(), report));
        }
        out.push_str(&multiclust::bench::compare::trend(&reports));
    }
    let loadtest_reports = load_loadtest_reports(&loadtest_inputs).map_err(CliError::plain)?;
    if !loadtest_reports.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&multiclust::loadtest::trend::trend(&loadtest_reports));
    }
    let mut passed = true;
    if let Some(candidate_path) = flags.get("slo") {
        let text = std::fs::read_to_string(candidate_path)
            .map_err(|e| CliError::plain(format!("flag --slo: reading {candidate_path}: {e}")))?;
        let candidate = multiclust::loadtest::report::parse(&text)
            .map_err(|e| CliError::plain(format!("flag --slo: {candidate_path}: {e}")))?;
        if loadtest_reports.is_empty() {
            return Err(CliError::plain(format!(
                "flag --slo: no LOADTEST_*.json baselines found in {dir}"
            )));
        }
        let label = Path::new(candidate_path)
            .file_stem()
            .and_then(|n| n.to_str())
            .unwrap_or(candidate_path);
        let (text, ok) =
            multiclust::loadtest::trend::slo_gate(&loadtest_reports, label, &candidate)
                .map_err(CliError::plain)?;
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&text);
        passed = ok;
    }
    Ok(Outcome { output: out, passed })
}

fn cmd_serve(flags: &Flags) -> Result<Outcome, CliError> {
    use multiclust::serve::{Listen, Server, ServerConfig};
    let addr = match flags.get("listen") {
        Some(a) => a.clone(),
        None => std::env::var("MULTICLUST_LISTEN")
            .unwrap_or_else(|_| "127.0.0.1:0".to_string()),
    };
    let listen = Listen::parse(&addr).map_err(CliError::from)?;
    let capacity: usize = flags.parsed_or("capacity", 64)?;
    if capacity == 0 {
        return Err(CliError::from("--capacity must be at least 1".to_string()));
    }
    // Chaos is opt-in via the environment so the load-test harness can
    // degrade a binary-booted server; production boots leave it unset.
    let chaos = multiclust::serve::ChaosConfig::from_env().map_err(CliError::plain)?;
    let config = ServerConfig {
        capacity,
        dispatch: multiclust::harness::fit_dispatch(),
        chaos,
    };
    let server = Server::bind(&listen, config)
        .map_err(|e| CliError::plain(format!("cannot listen on {}: {e}", listen.display())))?;
    // The ready line must reach the caller before the accept loop blocks:
    // with `--listen 127.0.0.1:0` it is the only way to learn the port.
    println!(
        "{{\"type\":\"ready\",\"schema\":\"{}\",\"addr\":\"{}\"}}",
        multiclust::serve::SCHEMA,
        server.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::plain(format!("stdout: {e}")))?;
    let summary = server
        .run()
        .map_err(|e| CliError::plain(format!("serve: {e}")))?;
    // Summary on stderr: stdout stays a pure protocol stream.
    eprintln!(
        "serve: shut down cleanly after {} requests ({} errors)",
        summary.requests, summary.errors
    );
    Ok(Outcome::ok(String::new()))
}

fn cmd_client(flags: &Flags) -> Result<Outcome, CliError> {
    use multiclust::serve::{client, Listen};
    let addr = match flags.get("connect") {
        Some(a) => a.clone(),
        None => std::env::var("MULTICLUST_LISTEN").map_err(|_| {
            "client needs --connect <addr> (or MULTICLUST_LISTEN)".to_string()
        })?,
    };
    let listen = Listen::parse(&addr).map_err(CliError::from)?;
    let requests: Vec<String> = if let Some(request) = flags.get("request") {
        vec![request.clone()]
    } else {
        let text = match flags.get("script") {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| CliError::plain(format!("reading {path}: {e}")))?,
            None => {
                let mut buf = String::new();
                use std::io::Read as _;
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| CliError::plain(format!("stdin: {e}")))?;
                buf
            }
        };
        // Blank lines and `#` comments let scripts document themselves.
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect()
    };
    if requests.is_empty() {
        return Err(CliError::plain(
            "client: no requests (use --request, --script or stdin)".to_string(),
        ));
    }
    // Transport failures are runtime errors; protocol-level errors come
    // back as response lines (`"ok":false`) and are the caller's to read.
    let responses = client::session(&listen, &requests)
        .map_err(|e| CliError::plain(format!("client: {} — {e}", listen.display())))?;
    let mut out = String::new();
    for response in &responses {
        out.push_str(response);
        out.push('\n');
    }
    Ok(Outcome::ok(out))
}

fn cmd_loadtest(flags: &Flags) -> Result<Outcome, CliError> {
    use multiclust::loadtest::{driver, judge, report, ScenarioSpec};

    // --judge / --doctor-report re-rule a stored report without running
    // anything; --doctor-report corrupts the measured summary first and
    // is expected to FAIL (negated in check.sh — the judge proving it
    // actually reads the numbers).
    if flags.get("judge").is_some() || flags.get("doctor-report").is_some() {
        let doctor = flags.get("doctor-report").is_some();
        let path = flags
            .get("doctor-report")
            .or_else(|| flags.get("judge"))
            .expect("checked above");
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::plain(format!("reading {path}: {e}")))?;
        let mut parsed = report::parse(&text).map_err(CliError::plain)?;
        if doctor {
            judge::doctor(&mut parsed.measured);
        }
        let judged = judge::judge(&parsed.expectations, &parsed.measured);
        let passed = judge::verdict(&judged);
        print_judgements(&parsed.scenario, &judged);
        let verdict = if passed { "PASS" } else { "FAIL" };
        return Ok(Outcome { output: format!("{verdict}\n"), passed });
    }

    let Some(path) = flags.positional.first() else {
        return Err("loadtest needs a scenario file (e.g. scenarios/smoke.json)"
            .to_string()
            .into());
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::plain(format!("reading {path}: {e}")))?;
    let spec = ScenarioSpec::parse(&text).map_err(CliError::plain)?;
    let boot = match flags.get("boot").map(String::as_str) {
        None | Some("in-process") => driver::BootMode::InProcess,
        Some("binary") => driver::BootMode::Binary,
        Some(other) => {
            return Err(format!("flag --boot: expected in-process or binary, got {other:?}").into())
        }
    };
    let inject = match flags.get("inject") {
        None => None,
        Some(name) => Some(driver::Inject::parse(name)?),
    };
    let record =
        driver::run_scenario(&spec, &driver::RunOptions { boot, inject }).map_err(CliError::plain)?;
    let judged = judge::judge(&spec.expectations, &judge::Measured::from_record(&record));
    let mut passed = judge::verdict(&judged);
    let rendered = report::render(&report::build(&record, &judged, flags.bool("canonical")));
    if let Some(out) = flags.get("out") {
        // The file always carries the full report (timing included) so
        // it can be re-judged on latency later.
        std::fs::write(out, report::render(&report::build(&record, &judged, false)))
            .map_err(|e| CliError::plain(format!("writing {out}: {e}")))?;
    }
    eprintln!(
        "loadtest {}: {} planned, {} responded, {} errors, {} ms wall",
        spec.name,
        record.planned,
        record.responded,
        record.errors_by_code.values().sum::<u64>(),
        record.wall_ms
    );
    print_judgements(&spec.name, &judged);
    if !passed {
        // Point the operator straight at the evidence: the server-side
        // flight dump plus a request id that appears in it.
        let first_failed = record
            .error_samples
            .first()
            .map(|(_, id)| id.as_str())
            .unwrap_or("-");
        match &record.flight_dump {
            Some(dump) => eprintln!(
                "loadtest: flight dump: {dump} (first failing request {first_failed})"
            ),
            None => eprintln!(
                "loadtest: no flight dump (recorder disabled; unset MULTICLUST_FLIGHT to re-enable)"
            ),
        }
    }
    if let Some(golden) = flags.get("golden") {
        let bless =
            flags.bool("bless") || std::env::var("MULTICLUST_BLESS").as_deref() == Ok("1");
        if bless {
            std::fs::write(golden, &rendered)
                .map_err(|e| CliError::plain(format!("writing {golden}: {e}")))?;
            eprintln!("loadtest: blessed {golden}");
        } else {
            let expected = std::fs::read_to_string(golden)
                .map_err(|e| CliError::plain(format!("reading {golden}: {e}")))?;
            if expected != rendered {
                eprintln!("loadtest: report diverges from golden {golden} (--bless to refresh)");
                passed = false;
            }
        }
    }
    Ok(Outcome { output: rendered, passed })
}

/// One judgement line per expectation, stderr — stdout stays the JSON
/// contract (the bench convention).
fn print_judgements(scenario: &str, judged: &[multiclust::loadtest::Judged]) {
    for j in judged {
        eprintln!(
            "  {} {:<17} {}",
            if j.pass { "PASS" } else { "FAIL" },
            j.expectation.kind(),
            j.measured
        );
    }
    let failed = judged.iter().filter(|j| !j.pass).count();
    if failed == 0 {
        eprintln!("loadtest {scenario}: PASS ({} expectations)", judged.len());
    } else {
        eprintln!("loadtest {scenario}: FAIL ({failed} of {} expectations)", judged.len());
    }
}

fn cmd_compare(flags: &Flags) -> Result<String, String> {
    let a = load_labels(flags.str("a")?)?;
    let b = load_labels(flags.str("b")?)?;
    if a.len() != b.len() {
        return Err(format!("label files differ in length: {} vs {}", a.len(), b.len()));
    }
    Ok(format!(
        "rand_index,{:.6}\nadjusted_rand_index,{:.6}\njaccard_index,{:.6}\n\
         normalized_mutual_information,{:.6}\nvariation_of_information,{:.6}\n",
        rand_index(&a, &b),
        adjusted_rand_index(&a, &b),
        jaccard_index(&a, &b),
        normalized_mutual_information(&a, &b),
        variation_of_information(&a, &b),
    ))
}
